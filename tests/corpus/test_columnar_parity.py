"""Property/differential harness: columnar store vs object-record spec.

Randomized seeded workloads — ingest / evict / fork / merge / query
interleavings — drive the columnar :class:`LearnerCorpus` and the
pre-columnar :class:`ReferenceCorpus` (``repro.corpus.reference``, the
executable specification) side by side, asserting identical records,
postings, document frequencies, tier assignments, suggestion results
and statistics after every barrier — including every permutation of
replica merge order.

The workload generator draws every decision from one seeded ``Random``,
so each seed is a reproducible interleaving; 200+ seeds run in tier-1.
"""

from __future__ import annotations

import itertools
from random import Random

import pytest

from repro.corpus.index import IndexConfig
from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.reference import (
    ReferenceCorpus,
    ReferenceSuggestionSearch,
    reference_report,
    reference_user_report,
)
from repro.corpus.search import SuggestionSearch
from repro.corpus.segments import SegmentedCorpus
from repro.corpus.statistics import StatisticAnalyzer
from repro.corpus.store import LearnerCorpus

#: Small vocabulary with a stopword backbone: a tiny DF cap makes the
#: high-frequency words cross into the stopword tier mid-workload, so
#: tier reassignment under eviction/merge is exercised constantly.
WORDS = [
    "the", "a", "is", "data",  # stopword backbone, capped early
    "stack", "queue", "tree", "list", "push", "pop", "node",
    "holds", "stores", "keeps", "element", "top", "full",
]
KEYWORDS = ["stack", "queue", "tree", "push", "pop", "Stack", ""]
USERS = ["ann", "bob", "cat", "dee"]
ROOMS = ["r1", "r2"]
PATTERNS = ["simple", "question", "negation"]
VERDICTS = [
    Correctness.CORRECT,
    Correctness.CORRECT,
    Correctness.CORRECT,
    Correctness.SYNTAX_ERROR,
    Correctness.SEMANTIC_ERROR,
    Correctness.QUESTION,
]
ISSUE_KINDS = ["unlinked-word", "agreement", "style"]
NOTES = ["misuse of push", "wrong container", "tense"]
CONFIG = IndexConfig(stopword_df_cap=3)


def random_record(rng: Random, record_id: int) -> CorpusRecord:
    keywords = [k for k in rng.sample(KEYWORDS, rng.randrange(0, 3)) if k]
    verdict = rng.choice(VERDICTS)
    return CorpusRecord(
        record_id=record_id,
        user=rng.choice(USERS),
        room=rng.choice(ROOMS),
        text=" ".join(rng.choice(WORDS) for _ in range(rng.randrange(2, 7))),
        timestamp=float(record_id),
        pattern=rng.choice(PATTERNS),
        verdict=verdict,
        syntax_issues=(
            [(rng.choice(ISSUE_KINDS), rng.choice(WORDS))
             for _ in range(rng.randrange(0, 3))]
            if verdict is Correctness.SYNTAX_ERROR else []
        ),
        semantic_issues=(
            [rng.choice(NOTES)] if verdict is Correctness.SEMANTIC_ERROR else []
        ),
        keywords=keywords,
        links="" if rng.random() < 0.5 else "D(the,stack)",
        cost=rng.randrange(0, 3),
    )


def clone(record: CorpusRecord) -> CorpusRecord:
    """An independent copy — merge renumbers ids in place, and the two
    stores under test must not share mutable record objects."""
    return CorpusRecord.from_dict(record.to_dict())


def drive_workload(seed: int, ops: int = 30) -> tuple[LearnerCorpus, ReferenceCorpus]:
    """Apply one seeded ingest/fork/merge interleaving to both stores."""
    rng = Random(seed)
    columnar = LearnerCorpus(CONFIG)
    reference = ReferenceCorpus(CONFIG)
    seq = 0
    for _ in range(ops):
        action = rng.random()
        if action < 0.55:
            record = random_record(rng, columnar.next_id())
            columnar.add(record)
            reference.add(clone(record))
            seq += 1
        else:
            # Barrier: fork replicas, spray records across them tagged
            # with origin seqs, merge in a random order, rebase.
            shards = rng.randrange(1, 4)
            col_replicas = [columnar.fork() for _ in range(shards)]
            ref_replicas = [reference.fork() for _ in range(shards)]
            for _ in range(rng.randrange(0, 6)):
                shard = rng.randrange(shards)
                col_replica = col_replicas[shard]
                ref_replica = ref_replicas[shard]
                col_replica.begin_origin(seq)
                ref_replica.begin_origin(seq)
                for _ in range(rng.randrange(1, 3)):
                    record = random_record(rng, col_replica.next_id())
                    col_replica.add(record)
                    ref_replica.add(clone(record))
                seq += 1
            order = list(range(shards))
            rng.shuffle(order)
            for shard in order:
                columnar.merge(col_replicas[shard])
                reference.merge(ref_replicas[shard])
            for col_replica, ref_replica in zip(col_replicas, ref_replicas):
                col_replica.rebase()
                ref_replica.rebase()
    return columnar, reference


def drive_workload_tiered(
    seed: int, ops: int = 30, segment_records: int | None = None
) -> tuple[ReferenceCorpus, LearnerCorpus, SegmentedCorpus]:
    """One seeded interleaving driving all three layouts side by side.

    The reference and the in-RAM columnar store see exactly the same
    records as :func:`drive_workload`'s pair; the third store is a
    :class:`SegmentedCorpus` whose immutable prefix is frozen to an
    on-disk segment at **every** barrier boundary (and, when a small
    ``segment_records`` cadence is given, between direct adds too), so
    every query in the assertions crosses the RAM/disk tier seam.
    """
    rng = Random(seed)
    reference = ReferenceCorpus(CONFIG)
    columnar = LearnerCorpus(CONFIG)
    segmented = SegmentedCorpus(
        CONFIG,
        segment_records=segment_records if segment_records is not None else (1 << 30),
        auto_freeze=segment_records is not None,
    )
    stores = (columnar, segmented)
    seq = 0
    for _ in range(ops):
        action = rng.random()
        if action < 0.55:
            record = random_record(rng, columnar.next_id())
            reference.add(clone(record))
            for store in stores:
                store.add(clone(record))
            seq += 1
        else:
            shards = rng.randrange(1, 4)
            ref_replicas = [reference.fork() for _ in range(shards)]
            replicas = [[store.fork() for _ in range(shards)] for store in stores]
            for _ in range(rng.randrange(0, 6)):
                shard = rng.randrange(shards)
                ref_replicas[shard].begin_origin(seq)
                for reps in replicas:
                    reps[shard].begin_origin(seq)
                for _ in range(rng.randrange(1, 3)):
                    record = random_record(rng, ref_replicas[shard].next_id())
                    ref_replicas[shard].add(clone(record))
                    for reps in replicas:
                        reps[shard].add(clone(record))
                seq += 1
            order = list(range(shards))
            rng.shuffle(order)
            for shard in order:
                reference.merge(ref_replicas[shard])
                for store, reps in zip(stores, replicas):
                    store.merge(reps[shard])
            for shard in range(shards):
                ref_replicas[shard].rebase()
                for reps in replicas:
                    reps[shard].rebase()
            # The tier seam under test: seal everything merged so far.
            segmented.freeze()
    segmented.freeze()
    return reference, columnar, segmented


def assert_stores_equal(columnar: LearnerCorpus, reference: ReferenceCorpus) -> None:
    assert len(columnar) == len(reference)
    # Records: snapshots, lazy views vs objects, field by field.
    assert columnar.snapshot() == reference.snapshot()
    for position, expected in enumerate(reference.records()):
        view = columnar.record_at(position)
        assert view == expected  # RecordView.__eq__ against the dataclass
        assert view.to_dict() == expected.to_dict()
        assert columnar.token_set(position) == reference.token_set(position)
        assert columnar.keyword_set(position) == reference.keyword_set(position)
        assert columnar.is_correct(position) == reference.is_correct(position)
        assert columnar.verdict_at(position) is reference.verdict_at(position)
    # Postings, DFs and tier assignments.
    for token in WORDS:
        assert columnar.token_positions(token) == reference.token_positions(token), token
        assert columnar.index.token_df(token) == reference.token_df(token), token
        assert columnar.index.is_capped_token(token) == reference.is_capped_token(token)
    for keyword in {k.lower() for k in KEYWORDS if k}:
        assert columnar.keyword_positions(keyword) == reference.keyword_positions(keyword)
    for user in USERS:
        assert columnar.index.user_positions(user) == reference.user_positions(user)
    assert columnar.verdict_counts() == reference.verdict_counts()
    for verdict in Correctness:
        assert (
            columnar.index.verdict_positions(verdict)
            == tuple(reference._by_verdict.get(verdict, ()))
        )


def assert_queries_equal(
    columnar: LearnerCorpus, reference: ReferenceCorpus, rng: Random
) -> None:
    col_search = SuggestionSearch(columnar, max_candidates=8)
    ref_search = ReferenceSuggestionSearch(reference, max_candidates=8)
    queries = [" ".join(rng.choice(WORDS) for _ in range(rng.randrange(1, 6)))
               for _ in range(4)]
    if len(reference):
        # Query an ingested sentence verbatim: the self-match exclusion
        # must behave identically on both layouts.
        queries.append(reference.record_at(rng.randrange(len(reference))).text)
    for query in queries:
        kwargs_cases = [
            {},
            {"keywords": [rng.choice(KEYWORDS[:5])]},
            {"keywords": [rng.choice(KEYWORDS[:5])], "min_keyword_overlap": 0.3},
        ]
        for kwargs in kwargs_cases:
            got = [
                (h.record.record_id, h.keyword_overlap, h.token_overlap)
                for h in col_search.find(query, **kwargs)
            ]
            expected = [
                (record.record_id, keyword_overlap, token_overlap)
                for record, keyword_overlap, token_overlap in ref_search.find(
                    query, **kwargs
                )
            ]
            assert got == expected, (query, kwargs)


def assert_statistics_equal(
    columnar: LearnerCorpus, reference: ReferenceCorpus
) -> None:
    assert StatisticAnalyzer(columnar).report() == reference_report(reference)
    analyzer = StatisticAnalyzer(columnar)
    for user in USERS + ["nobody"]:
        assert analyzer.user_report(user) == reference_user_report(reference, user)
    assert analyzer.most_common_mistakes() == [
        pair
        for pair in reference_report(reference).error_kind_counts[:5]
    ]


class TestRandomizedParity:
    """The headline differential property: 200 seeded interleavings."""

    @pytest.mark.parametrize("seed", range(200))
    def test_workload_parity(self, seed: int):
        columnar, reference = drive_workload(seed)
        assert_stores_equal(columnar, reference)
        assert_queries_equal(columnar, reference, Random(seed * 7919 + 1))

    @pytest.mark.parametrize("seed", range(0, 200, 8))
    def test_statistics_parity(self, seed: int):
        columnar, reference = drive_workload(seed, ops=40)
        assert_statistics_equal(columnar, reference)


class TestSegmentedThreeWayParity:
    """The satellite sweep: reference vs in-RAM columnar vs segmented,
    with the segmented store's prefix frozen at every barrier — every
    record, posting, DF, tier flag, suggestion and statistic must be
    identical whichever side of the disk seam it lives on."""

    @pytest.mark.parametrize("seed", range(200))
    def test_workload_parity(self, seed: int):
        reference, columnar, segmented = drive_workload_tiered(seed)
        assert segmented.frozen_records == len(segmented)
        assert segmented.snapshot() == columnar.snapshot()
        assert_stores_equal(segmented, reference)
        assert_queries_equal(segmented, reference, Random(seed * 7919 + 1))

    @pytest.mark.parametrize("seed", range(0, 200, 8))
    def test_statistics_parity(self, seed: int):
        reference, _columnar, segmented = drive_workload_tiered(seed, ops=40)
        assert_statistics_equal(segmented, reference)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(200))
    def test_aggressive_cadence_parity(self, seed: int):
        """Auto-freeze every 2 records on top of the barrier freezes:
        maximally many segments, single-record tails, freezes landing
        between consecutive adds."""
        reference, _columnar, segmented = drive_workload_tiered(
            seed, segment_records=2
        )
        assert len(segmented.segments) >= (1 if len(segmented) else 0)
        assert_stores_equal(segmented, reference)


class TestMergePermutationParity:
    """Every permutation of one barrier's replica merges must equal both
    the reference store driven identically *and* single-store ingestion
    in origin order."""

    @pytest.mark.parametrize("seed", range(12))
    def test_all_merge_orders(self, seed: int):
        rng = Random(seed)
        base_records = [random_record(rng, i) for i in range(rng.randrange(0, 5))]
        barrier_records = [random_record(rng, 100 + i) for i in range(6)]
        shard_of = [rng.randrange(3) for _ in barrier_records]

        def build(order: tuple[int, ...]) -> tuple[LearnerCorpus, ReferenceCorpus]:
            columnar = LearnerCorpus(CONFIG)
            reference = ReferenceCorpus(CONFIG)
            for record in base_records:
                columnar.add(clone(record))
                reference.add(clone(record))
            col_replicas = [columnar.fork() for _ in range(3)]
            ref_replicas = [reference.fork() for _ in range(3)]
            for seq, (record, shard) in enumerate(zip(barrier_records, shard_of)):
                col_replicas[shard].begin_origin(seq)
                ref_replicas[shard].begin_origin(seq)
                col_replicas[shard].add(clone(record))
                ref_replicas[shard].add(clone(record))
            for shard in order:
                columnar.merge(col_replicas[shard])
                reference.merge(ref_replicas[shard])
            return columnar, reference

        # Single-store ingestion in origin order: the canonical result.
        single = LearnerCorpus(CONFIG)
        for record in base_records:
            single.add(clone(record))
        for record in sorted(barrier_records, key=lambda r: r.record_id):
            copied = clone(record)
            copied.record_id = single.next_id()
            single.add(copied)
        canonical = single.snapshot()

        for order in itertools.permutations(range(3)):
            columnar, reference = build(order)
            assert_stores_equal(columnar, reference)
            assert columnar.snapshot() == canonical, order
            assert columnar.index.stats() == single.index.stats(), order


class TestViewContract:
    """The lazy view really is a drop-in record object."""

    def test_view_equals_materialised_record(self):
        corpus = LearnerCorpus(CONFIG)
        record = random_record(Random(3), 0)
        corpus.add(record)
        view = corpus.record_at(0)
        assert view == record and record == view
        assert view.to_dict() == record.to_dict()
        assert view != random_record(Random(4), 0)
        assert corpus.columns.materialize(0) == record

    def test_view_identity_is_stable(self):
        corpus = LearnerCorpus(CONFIG)
        corpus.add(random_record(Random(5), 0))
        assert corpus.record_at(0) is corpus.record_at(0)

    def test_views_are_unhashable_like_the_dataclass(self):
        corpus = LearnerCorpus(CONFIG)
        corpus.add(random_record(Random(6), 0))
        with pytest.raises(TypeError):
            hash(corpus.record_at(0))

    def test_save_load_round_trips_columnar_fields(self, tmp_path):
        columnar, reference = drive_workload(17, ops=25)
        path = tmp_path / "corpus.jsonl"
        columnar.save(path)
        loaded = LearnerCorpus.load(path, CONFIG)
        assert loaded.snapshot() == reference.snapshot()
        assert_stores_equal(loaded, reference)


class TestVocabularyProtocol:
    def test_interning_is_idempotent_and_ordered(self):
        from repro.corpus.records import Vocabulary

        vocab = Vocabulary()
        assert vocab.intern("stack") == 0
        assert vocab.intern("queue") == 1
        assert vocab.intern("stack") == 0  # stable on re-intern
        assert len(vocab) == 2
        assert list(vocab) == ["stack", "queue"] == vocab.terms
        assert "stack" in vocab and "tree" not in vocab
        assert vocab.id_of("queue") == 1 and vocab.id_of("tree") is None
        assert vocab.term(0) == "stack"
        assert vocab.memory_bytes() > 0

    def test_vocabularies_survive_eviction(self):
        # Eviction drops postings and rows, never vocabulary entries:
        # interned ids captured anywhere stay valid for the store's life.
        columnar, _ = drive_workload(23, ops=30)
        vocabs = columnar.columns.vocabs
        sizes = [len(vocab) for vocab in vocabs.all()]
        replica = columnar.fork()
        replica.begin_origin(10_000)
        replica.add(random_record(Random(99), replica.next_id()))
        columnar.merge(replica)
        replica.rebase()
        assert all(
            len(vocab) >= size for vocab, size in zip(vocabs.all(), sizes)
        )


class TestDiagnostics:
    def test_memory_stats_accounts_every_layer(self):
        columnar, reference = drive_workload(31, ops=40)
        stats = columnar.memory_stats()
        assert stats["records"] == len(columnar)
        for key in ("column_bytes", "text_bytes", "vocab_bytes", "index_payload_bytes"):
            assert stats[key] > 0, key
        assert stats["total_bytes"] >= sum(
            stats[k] for k in ("column_bytes", "text_bytes", "vocab_bytes")
        )
        # The object layout the columns replaced costs several times more.
        assert reference.memory_bytes() > stats["column_bytes"]

    def test_view_repr_names_position_and_verdict(self):
        columnar, _ = drive_workload(3, ops=10)
        text = repr(columnar.record_at(0))
        assert "RecordView" in text and "record_id=0" in text

    def test_merge_rejects_replica_forked_past_tail(self):
        columnar, _ = drive_workload(5, ops=12)
        replica = columnar.fork()
        columnar._evict_tail(max(0, len(columnar) - 1))
        if replica.base_len > len(columnar):
            with pytest.raises(ValueError):
                columnar.merge(replica)


class TestIndexUserAndKeywordHelpers:
    """The streaming helpers statistics and QA lean on."""

    def test_users_and_user_df_track_current_records(self):
        columnar, reference = drive_workload(41, ops=35)
        index = columnar.index
        assert sorted(index.users()) == sorted({r.user for r in reference.records()})
        for user in USERS:
            assert index.user_df(user) == len(reference.by_user(user))
            assert tuple(index.iter_user_positions(user)) == reference.user_positions(user)

    def test_user_verdict_count_is_a_true_intersection(self):
        columnar, reference = drive_workload(43, ops=35)
        for user in USERS:
            for verdict in Correctness:
                expected = sum(
                    1 for r in reference.by_user(user) if r.verdict is verdict
                )
                assert columnar.index.user_verdict_count(user, verdict) == expected
        assert columnar.index.user_verdict_count("nobody", Correctness.CORRECT) == 0

    def test_accumulate_correct_keyword_positions_fuses_verdict(self):
        columnar, reference = drive_workload(47, ops=35)
        for keyword in {k.lower() for k in KEYWORDS if k}:
            counts: dict[int, int] = {}
            columnar.index.accumulate_correct_keyword_positions(keyword, counts)
            expected = [
                position
                for position in reference.keyword_positions(keyword)
                if reference.is_correct(position)
            ]
            assert sorted(counts) == expected
            assert all(count == 1 for count in counts.values())
