"""Unit tests for the corpus disk segment tier: file format hardening,
writer atomicity, the frozen-prefix immutability contract (satellite
fix + regression), pickling, compaction and persistence round-trips.

The differential sweeps live elsewhere (3-way parity in
``test_columnar_parity.py``, cross-tier iterators in
``test_streaming_oracle.py``, crash boundaries in
``tests/durability/test_segment_freeze.py``); this module pins the
mechanisms those sweeps rely on.
"""

from __future__ import annotations

import pickle
from random import Random

import pytest

from repro.corpus.index import IndexConfig
from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.segments import (
    SEGMENT_SUFFIX,
    TMP_SUFFIX,
    FrozenSegment,
    FrozenTailError,
    SegmentLoadError,
    SegmentWriter,
    SegmentedCorpus,
    validate_segment_file,
)
from repro.corpus.store import LearnerCorpus

CONFIG = IndexConfig(stopword_df_cap=3)
WORDS = ["the", "data", "stack", "queue", "push", "pop", "holds", "node", "top"]
VERDICTS = [
    Correctness.CORRECT,
    Correctness.CORRECT,
    Correctness.SYNTAX_ERROR,
    Correctness.SEMANTIC_ERROR,
    Correctness.QUESTION,
]


def add_random(corpus, rng: Random, n: int) -> None:
    for _ in range(n):
        verdict = rng.choice(VERDICTS)
        corpus.add(
            CorpusRecord(
                record_id=corpus.next_id(),
                user=rng.choice(["ann", "bob", "cat"]),
                room="r1",
                text=" ".join(rng.choice(WORDS) for _ in range(rng.randrange(2, 6))),
                timestamp=float(corpus.next_id()),
                pattern="simple",
                verdict=verdict,
                syntax_issues=(
                    [("agreement", "the")] if verdict is Correctness.SYNTAX_ERROR else []
                ),
                semantic_issues=(
                    ["wrong container"] if verdict is Correctness.SEMANTIC_ERROR else []
                ),
                keywords=[w for w in ("stack", "queue") if rng.random() < 0.5],
                cost=rng.randrange(0, 3),
            )
        )


def segmented_pair(seed=1, n=40, cadence=7):
    """A frozen segmented corpus plus a plain twin fed the same records."""
    rng = Random(seed)
    segmented = SegmentedCorpus(CONFIG, segment_records=cadence, auto_freeze=True)
    add_random(segmented, rng, n)
    rng = Random(seed)
    plain = LearnerCorpus(CONFIG)
    add_random(plain, rng, n)
    return segmented, plain


class TestSegmentFileHardening:
    """A committed file round-trips; any damaged byte refuses to load."""

    def build_file(self, tmp_path):
        segmented, _ = segmented_pair(n=25, cadence=1 << 30)
        segmented.freeze()
        source = segmented.segments[0].path
        target = tmp_path / source.name
        target.write_bytes(source.read_bytes())
        segmented.close()
        return target

    def test_committed_file_validates(self, tmp_path):
        path = self.build_file(tmp_path)
        info = validate_segment_file(path)
        assert info == {"base": 0, "count": 25}

    def test_every_truncation_refuses_to_load(self, tmp_path):
        path = self.build_file(tmp_path)
        payload = path.read_bytes()
        torn = tmp_path / "torn.seg"
        # Sample prefixes across the whole file, including frame edges.
        for cut in list(range(0, 40)) + list(range(40, len(payload), 97)):
            torn.write_bytes(payload[:cut])
            with pytest.raises(SegmentLoadError):
                validate_segment_file(torn)

    def test_single_byte_corruption_refuses_to_load(self, tmp_path):
        path = self.build_file(tmp_path)
        payload = bytearray(path.read_bytes())
        flipped = tmp_path / "flipped.seg"
        for offset in range(0, len(payload), 131):
            corrupted = bytearray(payload)
            corrupted[offset] ^= 0x41
            flipped.write_bytes(bytes(corrupted))
            with pytest.raises(SegmentLoadError):
                validate_segment_file(flipped)

    def test_wrong_format_and_missing_file(self, tmp_path):
        with pytest.raises(SegmentLoadError):
            validate_segment_file(tmp_path / "nope.seg")
        junk = tmp_path / "junk.seg"
        junk.write_bytes(b"this is not a segment at all\n")
        with pytest.raises(SegmentLoadError):
            validate_segment_file(junk)
        empty = tmp_path / "empty.seg"
        empty.write_bytes(b"")
        with pytest.raises(SegmentLoadError):
            validate_segment_file(empty)


class TestSegmentWriter:
    def test_stale_tmp_files_swept_on_construction(self, tmp_path):
        stale = tmp_path / f"segment-000000000000-000000000004{TMP_SUFFIX}"
        stale.write_bytes(b"half a segment")
        SegmentWriter(tmp_path)
        assert not stale.exists()

    def test_deterministic_refreeze_overwrites_identically(self, tmp_path):
        rng = Random(5)
        a = SegmentedCorpus(CONFIG, segment_records=1 << 30, directory=tmp_path / "a")
        b = SegmentedCorpus(CONFIG, segment_records=1 << 30, directory=tmp_path / "b")
        for corpus in (a, b):
            add_random(corpus, Random(5), 20)
            corpus.freeze()
        pa, pb = a.segments[0].path, b.segments[0].path
        assert pa.name == pb.name
        assert pa.read_bytes() == pb.read_bytes()
        a.close(), b.close()


class TestFrozenTailImmutability:
    """Satellite fix: eviction/merge paths must refuse to rewrite rows
    already sealed on disk — cleanly, with a diagnostic counter, and
    with zero state mutated by the refused call."""

    def test_evict_below_boundary_refuses_and_counts(self):
        segmented, _ = segmented_pair(n=20, cadence=1 << 30)
        segmented.freeze()
        before = segmented.snapshot()
        assert segmented.evictions_refused == 0
        with pytest.raises(FrozenTailError):
            segmented._evict_tail(segmented.frozen_records - 1)
        assert segmented.evictions_refused == 1
        assert segmented.snapshot() == before
        segmented.close()

    def test_merge_of_replica_forked_below_boundary_refuses(self):
        segmented, _ = segmented_pair(n=12, cadence=1 << 30)
        replica = segmented.fork()  # fork floor at record 12, all in RAM
        replica.begin_origin(10_000)
        add_random(replica, Random(9), 1)
        add_random(segmented, Random(10), 4)
        segmented.freeze()  # seals 16 rows — past the fork floor
        before = segmented.snapshot()
        with pytest.raises(FrozenTailError):
            segmented.merge(replica)
        assert segmented.snapshot() == before
        assert segmented.evictions_refused == 1
        segmented.close()

    def test_merge_at_boundary_still_works(self):
        segmented, _ = segmented_pair(n=12, cadence=1 << 30)
        segmented.freeze()
        replica = segmented.fork()  # fork floor == freeze boundary
        replica.begin_origin(10_000)
        add_random(replica, Random(9), 2)
        assert segmented.merge(replica) == 2
        replica.rebase()
        assert len(segmented) == 14
        assert segmented.evictions_refused == 0
        segmented.close()

    def test_evict_within_tail_delegates(self):
        segmented, _ = segmented_pair(n=12, cadence=1 << 30)
        segmented.freeze()
        add_random(segmented, Random(11), 3)
        segmented._evict_tail(segmented.frozen_records + 1)
        assert len(segmented) == 13
        assert segmented.evictions_refused == 0
        segmented.close()


class TestCompaction:
    def test_compact_merges_all_segments_equal_state(self):
        segmented, plain = segmented_pair(n=40, cadence=7)
        segmented.freeze()
        assert len(segmented.segments) > 1
        before = segmented.snapshot()
        segmented.compact()
        assert len(segmented.segments) == 1
        assert segmented.segments[0].base == 0
        assert segmented.frozen_records == segmented.segments[0].count
        assert segmented.snapshot() == before == plain.snapshot()
        assert segmented.verdict_counts() == plain.verdict_counts()
        for word in WORDS:
            assert segmented.token_positions(word) == plain.token_positions(word)
        segmented.close()

    def test_compact_prune_unlinks_sources(self):
        segmented, _ = segmented_pair(n=30, cadence=6)
        segmented.freeze()
        old_paths = [segment.path for segment in segmented.segments]
        segmented.compact(prune=True)
        assert all(not path.exists() for path in old_paths)
        assert segmented.segments[0].path.exists()
        segmented.close()

    def test_compact_default_keeps_sources_for_old_snapshots(self):
        segmented, _ = segmented_pair(n=30, cadence=6)
        segmented.freeze()
        old_paths = [segment.path for segment in segmented.segments]
        segmented.compact()
        assert all(path.exists() for path in old_paths)
        segmented.close()

    def test_compact_noop_with_single_segment(self):
        segmented, _ = segmented_pair(n=10, cadence=1 << 30)
        segmented.freeze()
        assert segmented.compact() is None
        segmented.close()


class TestPersistence:
    def test_pickle_round_trip(self):
        segmented, plain = segmented_pair(n=30, cadence=6)
        clone = pickle.loads(pickle.dumps(segmented))
        assert clone.snapshot() == plain.snapshot()
        assert clone.frozen_records == segmented.frozen_records
        for word in WORDS:
            assert clone.token_positions(word) == plain.token_positions(word)
        clone.close()
        segmented.close()

    def test_columnar_round_trip_between_segmented_corpora(self, tmp_path):
        segmented, plain = segmented_pair(n=30, cadence=6)
        document = segmented.to_columnar()
        segmented.validate_columnar(document)
        other = SegmentedCorpus(
            CONFIG, segment_records=1 << 30, directory=segmented.directory
        )
        other.restore_columnar(document)
        assert other.snapshot() == plain.snapshot()
        assert other.frozen_records == segmented.frozen_records
        other.close()
        segmented.close()

    def test_validate_columnar_rejects_missing_segment(self, tmp_path):
        segmented, _ = segmented_pair(n=30, cadence=6)
        document = segmented.to_columnar()
        document["segments"][0]["file"] = "segment-gone.seg"
        with pytest.raises(SegmentLoadError):
            segmented.validate_columnar(document)
        segmented.close()

    def test_plain_corpus_rejects_segmented_document_with_hint(self):
        segmented, plain = segmented_pair(n=20, cadence=5)
        document = segmented.to_columnar()
        with pytest.raises(ValueError, match="corpus_segment_records"):
            plain.validate_columnar(document)
        with pytest.raises(ValueError, match="corpus_segment_records"):
            plain.restore_columnar(document)
        segmented.close()

    def test_validate_columnar_accepts_plain_document(self):
        segmented, plain = segmented_pair(n=10, cadence=4)
        segmented.validate_columnar(plain.to_columnar())  # no-op, no raise
        segmented.close()

    def test_validate_and_restore_reject_unknown_format(self):
        segmented, _ = segmented_pair(n=10, cadence=4)
        with pytest.raises(ValueError, match="not a"):
            segmented.validate_columnar({"format": "nope/9"})
        with pytest.raises(ValueError, match="not a"):
            segmented.restore_columnar({"format": "nope/9"})
        segmented.close()

    def test_validate_columnar_rejects_mismatched_reference(self):
        segmented, _ = segmented_pair(n=30, cadence=6)
        document = segmented.to_columnar()
        document["segments"][0]["count"] += 1
        with pytest.raises(SegmentLoadError, match="does not match"):
            segmented.validate_columnar(document)
        segmented.close()

    def test_validate_columnar_rejects_broken_contiguity(self):
        segmented, _ = segmented_pair(n=30, cadence=6)
        document = segmented.to_columnar()
        assert len(document["segments"]) >= 2
        del document["segments"][0]  # second segment's base is no longer 0
        with pytest.raises(SegmentLoadError, match="contiguity"):
            segmented.validate_columnar(document)
        segmented.close()

    def test_restore_rejects_mismatched_reference_and_keeps_state(self):
        segmented, plain = segmented_pair(n=30, cadence=6)
        document = segmented.to_columnar()
        document["segments"][-1]["count"] += 1
        other = SegmentedCorpus(
            CONFIG, segment_records=1 << 30, directory=segmented.directory
        )
        with pytest.raises(SegmentLoadError, match="does not match"):
            other.restore_columnar(document)
        # All-or-nothing: the failed restore left the target untouched
        # (and closed every segment it had provisionally opened).
        assert len(other) == 0
        assert other.frozen_records == 0
        other.close()
        assert segmented.snapshot() == plain.snapshot()
        segmented.close()

    def test_restore_plain_document_resets_the_tier(self):
        segmented, _ = segmented_pair(seed=2, n=30, cadence=6)
        assert segmented.frozen_records > 0
        replacement = LearnerCorpus(CONFIG)
        add_random(replacement, Random(11), 8)
        segmented.restore_columnar(replacement.to_columnar())
        assert segmented.frozen_records == 0
        assert len(segmented.segments) == 0
        assert segmented.snapshot() == replacement.snapshot()
        segmented.close()

    def test_save_writes_portable_plain_document(self, tmp_path):
        segmented, plain = segmented_pair(n=30, cadence=6)
        path = tmp_path / "corpus.json"
        segmented.save(path)
        loaded = LearnerCorpus.load(path, CONFIG)
        assert loaded.snapshot() == plain.snapshot()
        segmented.close()


class TestDiagnosticsAndLifecycle:
    def test_memory_stats_show_sublinear_residency(self):
        segmented, plain = segmented_pair(n=60, cadence=8)
        segmented.freeze()
        stats = segmented.memory_stats()
        assert stats["records"] == 60
        assert stats["frozen_records"] == 60
        assert stats["tail_records"] == 0
        assert stats["segments"] == len(segmented.segments)
        assert stats["disk_bytes"] > 0
        # The whole point of the tier: frozen rows cost disk, not heap.
        assert stats["resident_bytes"] < plain.memory_stats()["total_bytes"]
        segmented.close()

    def test_close_is_idempotent_and_releases_segments(self):
        segmented, _ = segmented_pair(n=20, cadence=5)
        paths = [segment.path for segment in segmented.segments]
        assert all(path.suffix == SEGMENT_SUFFIX for path in paths)
        segmented.close()
        segmented.close()
        assert len(segmented.segments) == 0

    def test_frozen_segment_reopen_by_path(self):
        segmented, plain = segmented_pair(n=20, cadence=1 << 30)
        segmented.freeze()
        reopened = FrozenSegment(segmented.segments[0].path)
        try:
            assert len(reopened) == 20
            assert [reopened.text_at(i) for i in range(20)] == [
                plain.text_at(i) for i in range(20)
            ]
        finally:
            reopened.close()
            segmented.close()

    def test_segment_records_must_be_positive(self):
        with pytest.raises(ValueError):
            SegmentedCorpus(CONFIG, segment_records=0)


class TestTieredReadSurfaceParity:
    """Every read accessor the rest of the system may call — columns,
    index point reads, posting queries, DFs, aggregations — must answer
    identically whichever side of the disk seam holds the row."""

    def test_column_accessors_match_plain_twin(self):
        segmented, plain = segmented_pair(seed=3, n=45)
        try:
            tiered, flat = segmented.columns, plain.columns
            assert len(tiered) == len(flat) == 45
            vocabs = tiered.vocabs
            for position in range(len(flat)):
                assert tiered.materialize(position) == flat.materialize(position)
                assert tiered.to_dict(position) == flat.to_dict(position)
                assert tiered.view(position).text == flat.view(position).text
                assert tiered.text_at(position) == flat.text_at(position)
                assert tiered.record_id_at(position) == flat.record_id_at(position)
                assert tiered.verdict_code_at(position) == flat.verdict_code_at(
                    position
                )
                assert tiered.pattern_id_at(position) == flat.pattern_id_at(position)
                assert tiered.user_id_at(position) == flat.user_id_at(position)
                assert tiered.note_count(position) == flat.note_count(position)
                assert tiered.token_set(position) == flat.token_set(position)
                assert tiered.keyword_set(position) == flat.keyword_set(position)
                assert tiered.keywords_at(position) == flat.keywords_at(position)
                assert tiered.syntax_issues_at(position) == flat.syntax_issues_at(
                    position
                )
                assert tiered.semantic_issues_at(position) == flat.semantic_issues_at(
                    position
                )
                for run in (
                    "token_id_run",
                    "keyword_id_run",
                    "raw_keyword_id_run",
                    "issue_kind_id_run",
                ):
                    assert list(getattr(tiered, run)(position)) == list(
                        getattr(flat, run)(position)
                    ), run
            del vocabs
        finally:
            segmented.close()

    def test_frozen_row_memo_survives_freeze_and_compact(self):
        segmented, plain = segmented_pair(seed=4, n=30, cadence=8)
        try:

            def snapshot_reads():
                return [
                    (
                        segmented.columns.text_at(position),
                        segmented.columns.record_id_at(position),
                        segmented.columns.token_set(position),
                        segmented.columns.keyword_set(position),
                    )
                    for position in range(len(plain))
                ]

            before = snapshot_reads()  # fills the facade memo
            segmented.freeze()  # epoch bump: memo must invalidate
            assert snapshot_reads() == before
            segmented.compact()  # another tier-layout change
            assert snapshot_reads() == before
            assert before[0][0] == plain.text_at(0)
        finally:
            segmented.close()

    def test_index_query_surface_matches_plain_twin(self):
        segmented, plain = segmented_pair(seed=5, n=50)
        try:
            tiered, flat = segmented.index, plain.index
            assert len(tiered) == len(flat) == 50
            assert tiered.config == flat.config
            assert tiered.vocabularies is segmented.columns.vocabs
            for position in range(len(flat)):
                assert tiered.verdict_at(position) == flat.verdict_at(position)
                assert tiered.is_correct(position) == flat.is_correct(position)
            assert tiered.verdict_counts() == flat.verdict_counts()
            for verdict in VERDICTS:
                assert tiered.verdict_positions(verdict) == flat.verdict_positions(
                    verdict
                )
                assert list(tiered.iter_verdict_positions(verdict)) == list(
                    flat.iter_verdict_positions(verdict)
                )
            for keyword in ("stack", "queue", "missing"):
                assert tiered.keyword_positions(keyword) == flat.keyword_positions(
                    keyword
                )
                assert list(tiered.iter_keyword_positions(keyword)) == list(
                    flat.iter_keyword_positions(keyword)
                )
                assert tiered.keyword_df(keyword) == flat.keyword_df(keyword)
            for token in WORDS + ["missing"]:
                assert tiered.token_positions(token) == flat.token_positions(token)
                assert list(tiered.iter_token_positions(token)) == list(
                    flat.iter_token_positions(token)
                )
                assert tiered.token_df(token) == flat.token_df(token)
                assert tiered.is_capped_token(token) == flat.is_capped_token(token)
            for user in ("ann", "bob", "cat", "zoe"):
                assert tiered.user_positions(user) == flat.user_positions(user)
                assert list(tiered.iter_user_positions(user)) == list(
                    flat.iter_user_positions(user)
                )
                assert tiered.user_df(user) == flat.user_df(user)
                for verdict in VERDICTS:
                    assert tiered.user_verdict_count(user, verdict) == (
                        flat.user_verdict_count(user, verdict)
                    )
            assert sorted(tiered.users()) == sorted(flat.users())
            assert tiered.split_tokens(WORDS) == flat.split_tokens(WORDS)
        finally:
            segmented.close()

    def test_correct_keyword_accumulation_matches_plain_twin(self):
        segmented, plain = segmented_pair(seed=6, n=60)
        try:
            for keyword in ("stack", "queue", "missing"):
                tiered_counts: dict[int, int] = {}
                flat_counts: dict[int, int] = {}
                segmented.index.accumulate_correct_keyword_positions(
                    keyword, tiered_counts
                )
                plain.index.accumulate_correct_keyword_positions(keyword, flat_counts)
                assert tiered_counts == flat_counts, keyword
        finally:
            segmented.close()

    def test_index_stats_account_for_every_tier(self):
        segmented, plain = segmented_pair(seed=7, n=50)
        try:
            tiered, flat = segmented.index.stats(), plain.index.stats()
            assert tiered["records"] == flat["records"] == 50
            # Tiers partition the records, so per-record contributions
            # (postings, capped DFs) are exactly the flat store's; term
            # entries may be duplicated across segments.
            assert tiered["postings"] == flat["postings"]
            assert tiered["capped_tokens"] == flat["capped_tokens"]
            assert tiered["terms"] >= flat["terms"]
            assert tiered["payload_bytes"] > 0
        finally:
            segmented.close()

    # The posting-protocol checks run inside helper frames so every
    # memoryview-backed posting object dies with the frame before the
    # corpus (and its mmaps) is closed.

    def test_tiered_postings_protocol(self):
        segmented, plain = segmented_pair(seed=8, n=40)
        try:
            self._check_tiered_postings(segmented, plain)
        finally:
            segmented.close()

    @staticmethod
    def _check_tiered_postings(segmented, plain):
        run = segmented.index.token_postings("data")
        flat = plain.index.token_postings("data")
        assert run is not None and flat is not None
        assert bool(run) and len(run) == len(flat)
        assert run.positions() == flat.positions()
        assert run.last == flat.last
        assert run.nbytes() > 0
        # The global gaps stream decodes across tier boundaries.
        decoded, position = [], 0
        for gap in run.gaps:
            position += gap
            decoded.append(position)
        assert tuple(decoded) == flat.positions()
        counts: dict[int, int] = {}
        run.accumulate_into(counts)
        assert set(counts) == set(flat.positions())
        assert all(count == 1 for count in counts.values())

    def test_frozen_postings_protocol(self):
        segmented, plain = segmented_pair(seed=9, n=25, cadence=1 << 30)
        try:
            segmented.freeze()
            self._check_frozen_postings(segmented, plain)
        finally:
            segmented.close()

    @staticmethod
    def _check_frozen_postings(segmented, plain):
        (segment,) = segmented.segments
        token_id = segmented.columns.vocabs.tokens.id_of("data")
        frozen = segment.postings("tokens", token_id)
        reference = plain.index.token_positions("data")
        assert frozen is not None
        assert frozen.positions() == reference
        assert frozen.last == reference[-1]
        assert frozen.nbytes() > 0
        counts: dict[int, int] = {}
        frozen.accumulate_into(counts)
        assert tuple(sorted(counts)) == reference
