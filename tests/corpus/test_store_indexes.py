"""Ingestion-time indexes of the learner corpus: cached token/keyword
sets and the verdict / inverted-keyword indexes must agree with brute
force scans, including after a save/load round trip."""

from __future__ import annotations

from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.search import SuggestionSearch
from repro.corpus.store import LearnerCorpus
from repro.linkgrammar.tokenizer import tokenize


def make_record(corpus: LearnerCorpus, text: str, verdict: Correctness, keywords: list[str]):
    return corpus.add(
        CorpusRecord(
            record_id=corpus.next_id(),
            user="u",
            room="r",
            text=text,
            timestamp=float(corpus.next_id()),
            pattern="simple",
            verdict=verdict,
            syntax_issues=[],
            semantic_issues=[],
            keywords=keywords,
            links="",
            cost=0,
        )
    )


def seeded_corpus() -> LearnerCorpus:
    corpus = LearnerCorpus()
    make_record(corpus, "We push an element onto the stack.", Correctness.CORRECT, ["stack", "push"])
    make_record(corpus, "The queue has dequeue operation.", Correctness.CORRECT, ["queue", "dequeue"])
    make_record(corpus, "tree have pop", Correctness.SYNTAX_ERROR, ["tree", "pop"])
    make_record(corpus, "A binary tree is a tree.", Correctness.CORRECT, ["binary tree", "tree"])
    make_record(corpus, "What is a queue?", Correctness.QUESTION, ["queue"])
    return corpus


class TestIngestionCaches:
    def test_token_sets_cached_on_add(self):
        corpus = seeded_corpus()
        for position, record in enumerate(corpus.records()):
            assert corpus.token_set(position) == frozenset(tokenize(record.text).words)

    def test_keyword_sets_lowercased(self):
        corpus = seeded_corpus()
        for position, record in enumerate(corpus.records()):
            assert corpus.keyword_set(position) == frozenset(k.lower() for k in record.keywords)

    def test_round_trip_rebuilds_caches(self, tmp_path):
        corpus = seeded_corpus()
        path = tmp_path / "corpus.jsonl"
        corpus.save(path)
        loaded = LearnerCorpus.load(path)
        assert len(loaded) == len(corpus)
        for position in range(len(corpus)):
            assert loaded.token_set(position) == corpus.token_set(position)
            assert loaded.keyword_set(position) == corpus.keyword_set(position)
        assert [r.record_id for r in loaded.correct_records()] == [
            r.record_id for r in corpus.correct_records()
        ]


class TestIndexParity:
    def test_by_verdict_matches_filter(self):
        corpus = seeded_corpus()
        for verdict in Correctness:
            assert corpus.by_verdict(verdict) == corpus.filter(lambda r: r.verdict == verdict)

    def test_with_keyword_matches_filter(self):
        corpus = seeded_corpus()
        for keyword in ("stack", "TREE", "queue", "missing"):
            needle = keyword.lower()
            expected = corpus.filter(lambda r: needle in (k.lower() for k in r.keywords))
            assert corpus.with_keyword(keyword) == expected

    def test_correct_positions_align(self):
        corpus = seeded_corpus()
        positions = list(corpus.correct_positions())
        assert [record for _, record in positions] == corpus.correct_records()
        for position, record in positions:
            assert corpus.record_at(position) is record


class TestSuggestionSearchUsesIndexes:
    def test_keyword_constrained_find_matches_bruteforce(self):
        corpus = seeded_corpus()
        search = SuggestionSearch(corpus)
        query = "The stack doesn't have dequeue."
        hits = search.find(query, keywords=["stack", "dequeue"], min_keyword_overlap=0.1)
        # Brute force over correct records with the same scoring rule.
        query_tokens = set(tokenize(query).words)
        query_keywords = {"stack", "dequeue"}
        expected = []
        for record in corpus.correct_records():
            record_keywords = {k.lower() for k in record.keywords}
            union = query_keywords | record_keywords
            keyword_overlap = len(query_keywords & record_keywords) / len(union) if union else 0.0
            if keyword_overlap < 0.1:
                continue
            record_tokens = set(tokenize(record.text).words)
            token_union = query_tokens | record_tokens
            token_overlap = len(query_tokens & record_tokens) / len(token_union) if token_union else 0.0
            if keyword_overlap == 0.0 and token_overlap == 0.0:
                continue
            expected.append((record.record_id, keyword_overlap, token_overlap))
        expected.sort(key=lambda item: (-item[1], -item[2], item[0]))
        assert [(h.record.record_id, h.keyword_overlap, h.token_overlap) for h in hits] == expected

    def test_find_accepts_pretokenized_sentence(self):
        corpus = seeded_corpus()
        search = SuggestionSearch(corpus)
        raw = "stack have push"
        assert search.find(tokenize(raw), keywords=["stack"]) == search.find(
            raw, keywords=["stack"]
        )

    def test_never_suggests_query_back(self):
        corpus = seeded_corpus()
        search = SuggestionSearch(corpus)
        hits = search.find("We push an element onto the stack.", keywords=["stack", "push"])
        assert all(
            hit.record.text.lower() != "we push an element onto the stack." for hit in hits
        )
