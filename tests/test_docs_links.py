"""The committed docs must pass the markdown link checker.

``make docs-check`` / CI run ``tools/docs_check.py`` as a subprocess;
this tier-1 mirror keeps a broken README/docs link from surviving a
plain ``pytest`` run, and pins the checker's own behaviour on synthetic
breakage so it cannot silently rot into a no-op.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "docs_check", REPO_ROOT / "tools" / "docs_check.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("docs_check", module)
    spec.loader.exec_module(module)
    return module


class TestCommittedDocs:
    def test_readme_and_docs_links_resolve(self):
        checker = load_checker()
        assert checker.main([]) == 0

    def test_front_door_files_exist(self):
        assert (REPO_ROOT / "README.md").exists()
        assert (REPO_ROOT / "docs" / "index.md").exists()
        assert (REPO_ROOT / "docs" / "corpus.md").exists()
        assert (REPO_ROOT / "docs" / "runtime.md").exists()


class TestCheckerCatchesBreakage:
    def test_flags_missing_target_and_anchor(self, tmp_path):
        checker = load_checker()
        sample = tmp_path / "sample.md"
        sample.write_text(
            "# Real\n\n[ok](#real)\n[broken](missing.md)\n[bad](#nope)\n",
            encoding="utf-8",
        )
        problems = checker.check_file(sample)
        assert len(problems) == 2
        assert any("missing.md" in problem for problem in problems)
        assert any("#nope" in problem for problem in problems)

    def test_ignores_code_blocks_and_external_urls(self, tmp_path):
        checker = load_checker()
        sample = tmp_path / "sample.md"
        sample.write_text(
            "# T\n\n[site](https://example.com)\n\n"
            "```\n[not a link](nowhere.md)\n```\n\n"
            "`[inline](alsono.md)`\n",
            encoding="utf-8",
        )
        assert checker.check_file(sample) == []
