"""Concurrency hammer: N client threads against the live HTTP server.

The serving layer's whole claim is that an admission lock turns
concurrent socket traffic into the single-writer sequence the core
requires.  The hammer drives real threads through real sockets —
posting, joining, leaving, re-roling and reading at once — and then
checks the two properties that claim rests on:

* **ordering** — no lost posts, no per-client seq reordering, every
  room transcript strictly seq-sorted;
* **parity** — replaying the *admitted* input sequence (captured off
  the event bus, which publishes under the admission lock) through an
  in-process system produces a byte-identical ``build_snapshot``:
  the network front door adds no state of its own.
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.chatroom.events import MessageDelivered, UserJoined, UserLeft
from repro.chatroom.messages import MessageKind, Role
from repro.core.system import ELearningSystem
from repro.durability.snapshot import build_snapshot
from repro.serving import ChatGateway, ChatHTTPServer

CLIENTS = 6
POSTS_PER_CLIENT = 12
ROOMS = ("ham-0", "ham-1", "ham-2")

#: Deterministic per-client traffic: questions, clean claims, violations.
TEXTS = (
    "What is a queue?",
    "We push an element onto the stack.",
    "I push the data into a tree.",
    "A binary tree is a tree.",
)


class Client(threading.Thread):
    """One user: joins its rooms, posts, reads, re-roles, leaves one room."""

    def __init__(self, index: int, address) -> None:
        super().__init__(name=f"hammer-{index}")
        self.index = index
        self.user = f"user-{index}"
        self.address = address
        self.seqs: list[int] = []
        self.error: Exception | None = None

    def request(self, conn, method: str, path: str, body: dict | None = None):
        conn.request(method, path, json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status < 400, f"{method} {path} -> {response.status}: {payload}"
        return payload

    def run(self) -> None:
        try:
            host, port = self.address
            conn = http.client.HTTPConnection(host, port, timeout=60)
            try:
                for room in ROOMS:
                    self.request(conn, "POST", f"/rooms/{room}/join", {"user": self.user})
                cursor = -1
                for i in range(POSTS_PER_CLIENT):
                    room = ROOMS[(self.index + i) % len(ROOMS)]
                    text = TEXTS[(self.index + i) % len(TEXTS)]
                    payload = self.request(
                        conn,
                        "POST",
                        f"/rooms/{room}/messages",
                        {"user": self.user, "text": text},
                    )
                    self.seqs.append(payload["message"]["seq"])
                    if i % 3 == 0:
                        # Interleave reads with the writes: the page must
                        # contain this client's just-delivered message.
                        page = self.request(
                            conn, "GET", f"/rooms/{room}/transcript?since={cursor}"
                        )
                        seqs = [m["seq"] for m in page["messages"]]
                        assert seqs == sorted(seqs)
                        assert payload["message"]["seq"] in seqs
                        cursor = page["next"]
                    if i == POSTS_PER_CLIENT // 2:
                        # Mid-run role churn: re-join one room as teacher.
                        self.request(
                            conn,
                            "POST",
                            f"/rooms/{ROOMS[self.index % len(ROOMS)]}/join",
                            {"user": self.user, "role": "teacher"},
                        )
                self.request(
                    conn,
                    "POST",
                    f"/rooms/{ROOMS[(self.index + 1) % len(ROOMS)]}/leave",
                    {"user": self.user},
                )
            finally:
                conn.close()
        except Exception as exc:  # surfaced by the main thread's assert
            self.error = exc


@pytest.fixture(scope="module")
def hammered():
    """One hammer run shared by every assertion below."""
    system = ELearningSystem.with_defaults()
    for room in ROOMS:
        system.open_room(room, topic="hammer")
    # Record the admitted input order off the bus: publishes happen under
    # the gateway's admission lock, so this list IS the serialization the
    # core observed.
    ops: list[tuple] = []
    system.bus.subscribe(
        UserJoined, lambda e: ops.append(("join", e.room, e.user, e.role))
    )
    system.bus.subscribe(UserLeft, lambda e: ops.append(("leave", e.room, e.user)))
    system.bus.subscribe(
        MessageDelivered,
        lambda e: ops.append(("say", e.message.room, e.message.sender, e.message.text))
        if e.message.kind is MessageKind.USER
        else None,
    )
    gateway = ChatGateway(system)
    httpd = ChatHTTPServer(gateway)
    server_thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    server_thread.start()
    clients = [Client(i, httpd.server_address[:2]) for i in range(CLIENTS)]
    for client in clients:
        client.start()
    for client in clients:
        client.join(timeout=300)
    httpd.shutdown()
    httpd.server_close()
    yield system, clients, ops
    system.close()


class TestOrdering:
    def test_every_client_finished(self, hammered):
        _, clients, _ = hammered
        for client in clients:
            assert not client.is_alive(), f"{client.name} hung"
            assert client.error is None, f"{client.name}: {client.error!r}"
            assert len(client.seqs) == POSTS_PER_CLIENT

    def test_no_client_sees_its_posts_reordered(self, hammered):
        _, clients, _ = hammered
        for client in clients:
            assert client.seqs == sorted(client.seqs)
            assert len(set(client.seqs)) == POSTS_PER_CLIENT

    def test_no_posts_lost_and_no_seqs_shared(self, hammered):
        system, clients, _ = hammered
        posted = [seq for client in clients for seq in client.seqs]
        assert len(set(posted)) == len(posted), "two clients share a seq"
        delivered = {
            message.seq
            for room in ROOMS
            for message in system.server.get_room(room).transcript
            if message.kind is MessageKind.USER
        }
        assert delivered == set(posted)

    def test_transcripts_strictly_seq_sorted(self, hammered):
        system, _, _ = hammered
        for room in ROOMS:
            seqs = [m.seq for m in system.server.get_room(room).transcript]
            assert seqs == sorted(set(seqs))

    def test_role_churn_landed(self, hammered):
        system, clients, _ = hammered
        for client in clients:
            room = ROOMS[client.index % len(ROOMS)]
            assert system.server.role_of(room, client.user) is Role.TEACHER


class TestSnapshotParity:
    def test_http_run_snapshot_equals_in_process_replay(self, hammered):
        """The acceptance-criteria check: drive the admitted sequence
        in-process and require byte-identical full-system snapshots."""
        system, _, ops = hammered
        replay = ELearningSystem.with_defaults()
        try:
            for room in ROOMS:
                replay.open_room(room, topic="hammer")
            for op in ops:
                if op[0] == "join":
                    replay.join(op[1], op[2], Role(op[3]))
                elif op[0] == "leave":
                    replay.leave(op[1], op[2])
                else:
                    replay.say(op[1], op[2], op[3])
            served_bytes = json.dumps(build_snapshot(system, 0), sort_keys=True)
            replayed_bytes = json.dumps(build_snapshot(replay, 0), sort_keys=True)
            assert served_bytes == replayed_bytes
        finally:
            replay.close()
