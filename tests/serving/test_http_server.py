"""The HTTP front door: routes, status mapping, long-poll, SSE.

Every test drives a live ``ThreadingHTTPServer`` on an ephemeral port
through real sockets — the serving layer has no request-object seam to
fake, on purpose.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.core.system import ELearningSystem
from repro.serving import ApiError, ChatGateway, ChatHTTPServer


@pytest.fixture(scope="module")
def served():
    system = ELearningSystem.with_defaults()
    gateway = ChatGateway(system)
    httpd = ChatHTTPServer(gateway)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield system, gateway, httpd
    httpd.shutdown()
    httpd.server_close()
    system.close()


def request(httpd, method: str, path: str, body: dict | None = None):
    host, port = httpd.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        raw = response.read()
    finally:
        conn.close()
    return response.status, json.loads(raw) if raw else None


class TestRoomLifecycle:
    def test_create_room(self, served):
        _, _, httpd = served
        status, body = request(httpd, "POST", "/rooms", {"name": "api", "topic": "stacks"})
        assert status == 201
        assert body == {"room": "api", "topic": "stacks"}

    def test_duplicate_room_is_409(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "dup"})
        status, body = request(httpd, "POST", "/rooms", {"name": "dup"})
        assert status == 409
        assert "already exists" in body["error"]

    def test_join_leave_roundtrip(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "jl"})
        status, body = request(httpd, "POST", "/rooms/jl/join", {"user": "alice"})
        assert (status, body["joined"], body["role"]) == (200, True, "student")
        status, body = request(httpd, "POST", "/rooms/jl/leave", {"user": "alice"})
        assert (status, body["left"]) == (200, True)

    def test_non_member_leave_surfaces_noop(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "noop"})
        status, body = request(httpd, "POST", "/rooms/noop/leave", {"user": "ghost"})
        assert (status, body["left"]) == (200, False)

    def test_rejoin_with_new_role_reports_change(self, served):
        system, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "roles"})
        request(httpd, "POST", "/rooms/roles/join", {"user": "prof"})
        status, body = request(
            httpd, "POST", "/rooms/roles/join", {"user": "prof", "role": "teacher"}
        )
        assert (status, body["joined"]) == (200, True)
        assert system.server.role_of("roles", "prof").value == "teacher"
        status, body = request(
            httpd, "POST", "/rooms/roles/join", {"user": "prof", "role": "teacher"}
        )
        assert (status, body["joined"]) == (200, False)  # same-role rejoin: no-op


class TestMessagesAndTranscript:
    def test_post_returns_delivered_message(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "msg"})
        request(httpd, "POST", "/rooms/msg/join", {"user": "u"})
        status, body = request(
            httpd, "POST", "/rooms/msg/messages", {"user": "u", "text": "What is a queue?"}
        )
        assert status == 202
        assert body["message"]["room"] == "msg"
        assert body["message"]["text"] == "What is a queue?"
        # Queued runtime auto-drains: the QA reply already landed.
        status, page = request(
            httpd, "GET", f"/rooms/msg/transcript?since={body['message']['seq']}"
        )
        assert status == 200
        assert [m["kind"] for m in page["messages"]] == ["agent"]
        assert page["next"] == page["messages"][-1]["seq"]

    def test_since_cursor_resumes_after_seq(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "cursor"})
        request(httpd, "POST", "/rooms/cursor/join", {"user": "u"})
        seqs = []
        for text in ("A stack supports push.", "A binary tree is a tree."):
            _, body = request(
                httpd, "POST", "/rooms/cursor/messages", {"user": "u", "text": text}
            )
            seqs.append(body["message"]["seq"])
        _, page = request(httpd, "GET", f"/rooms/cursor/transcript?since={seqs[0]}")
        assert [m["seq"] for m in page["messages"]] == [seqs[1]]
        _, page = request(httpd, "GET", f"/rooms/cursor/transcript?since={seqs[1]}")
        assert page["messages"] == []
        assert page["next"] == seqs[1]  # cursor unchanged on an empty page

    def test_long_poll_wakes_on_new_traffic(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "poll"})
        request(httpd, "POST", "/rooms/poll/join", {"user": "u"})
        _, page = request(httpd, "GET", "/rooms/poll/transcript")
        cursor = page["next"]
        result = {}

        def poll():
            result["page"] = request(
                httpd, "GET", f"/rooms/poll/transcript?since={cursor}&wait=20"
            )

        poller = threading.Thread(target=poll)
        poller.start()
        time.sleep(0.2)  # park the poller on the delivery condition
        request(
            httpd, "POST", "/rooms/poll/messages", {"user": "u", "text": "What is Stack?"}
        )
        poller.join(timeout=20)
        assert not poller.is_alive()
        status, page = result["page"]
        assert status == 200
        assert page["messages"], "long-poll returned an empty page despite new traffic"
        assert page["messages"][0]["text"] == "What is Stack?"

    def test_expired_long_poll_returns_empty_page(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "idle"})
        start = time.monotonic()
        status, page = request(httpd, "GET", "/rooms/idle/transcript?since=10000&wait=0.2")
        assert status == 200
        assert page["messages"] == []
        assert time.monotonic() - start >= 0.2


class TestErrorMapping:
    def test_unknown_room_is_404(self, served):
        _, _, httpd = served
        status, body = request(httpd, "GET", "/rooms/ghost/transcript")
        assert status == 404
        status, body = request(httpd, "POST", "/rooms/ghost/join", {"user": "u"})
        assert status == 404
        assert "no room named" in body["error"]

    def test_post_while_absent_is_403(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "guarded"})
        status, body = request(
            httpd, "POST", "/rooms/guarded/messages", {"user": "stranger", "text": "hi"}
        )
        assert status == 403
        assert "not in room" in body["error"]

    def test_malformed_json_is_400(self, served):
        _, _, httpd = served
        host, port = httpd.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("POST", "/rooms", "{not json")
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "JSON" in body["error"]

    def test_unknown_role_is_400(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "badrole"})
        status, body = request(
            httpd, "POST", "/rooms/badrole/join", {"user": "u", "role": "wizard"}
        )
        assert status == 400
        assert "role" in body["error"]

    def test_wrong_method_is_405(self, served):
        _, _, httpd = served
        status, _ = request(httpd, "GET", "/rooms")
        assert status == 405
        status, _ = request(httpd, "POST", "/rooms/ghost/transcript", {})
        assert status == 405

    def test_unknown_path_is_404(self, served):
        _, _, httpd = served
        status, _ = request(httpd, "GET", "/nothing/here")
        assert status == 404

    def test_bad_query_parameter_is_400(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "badq"})
        status, body = request(httpd, "GET", "/rooms/badq/transcript?since=abc")
        assert status == 400
        assert "since" in body["error"]

    def test_handler_errors_do_not_kill_the_connection(self, served):
        _, _, httpd = served
        host, port = httpd.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            # Three failing requests, then a good one, all on one
            # keep-alive connection: an error response must leave the
            # connection serviceable.
            for path in ("/rooms/ghost/transcript", "/nothing", "/rooms/ghost/transcript"):
                conn.request("GET", path)
                response = conn.getresponse()
                response.read()
                assert response.status in (404, 405)
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 200
            assert body["status"] == "ok"
        finally:
            conn.close()


class TestHealth:
    def test_healthz_counters(self, served):
        system, _, httpd = served
        status, body = request(httpd, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["rooms"] == len(system.server.rooms)
        assert body["messages"] == system.server.total_messages()
        assert body["runtime"] == "queued"


class TestEventStream:
    def test_sse_streams_replies_and_verdicts(self, served):
        _, _, httpd = served
        request(httpd, "POST", "/rooms", {"name": "sse"})
        request(httpd, "POST", "/rooms/sse/join", {"user": "u"})
        host, port = httpd.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("GET", "/events?limit=3&timeout=20&room=sse")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"

        def post_violation():
            time.sleep(0.2)  # let the stream subscribe first
            request(
                httpd,
                "POST",
                "/rooms/sse/messages",
                {"user": "u", "text": "I push the data into a tree."},
            )

        threading.Thread(target=post_violation, daemon=True).start()
        raw = response.read().decode("utf-8")
        conn.close()
        events = [line.split(": ", 1)[1] for line in raw.splitlines() if line.startswith("event: ")]
        datas = [
            json.loads(line.split(": ", 1)[1])
            for line in raw.splitlines()
            if line.startswith("data: ")
        ]
        assert "reply" in events
        assert "verdict" in events
        assert all(data["room"] == "sse" for data in datas)

    def test_sse_timeout_ends_an_idle_stream(self, served):
        _, _, httpd = served
        host, port = httpd.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("GET", "/events?timeout=0.2")
        response = conn.getresponse()
        raw = response.read()  # returns once the stream times out
        conn.close()
        assert response.status == 200
        assert b"event:" not in raw

    def test_stream_unsubscribes_when_done(self, served):
        _, gateway, httpd = served
        before = len(gateway._streams)
        host, port = httpd.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request("GET", "/events?timeout=0.1")
        conn.getresponse().read()
        conn.close()
        assert len(gateway._streams) == before


class TestGatewayUnit:
    def test_api_error_carries_status(self):
        error = ApiError(404, "gone")
        assert error.status == 404
        assert str(error) == "gone"

    def test_empty_text_rejected(self, served):
        _, gateway, _ = served
        gateway.create_room("empty-text")
        gateway.join("empty-text", "u")
        with pytest.raises(ApiError) as excinfo:
            gateway.post("empty-text", "u", "")
        assert excinfo.value.status == 400

    def test_stalled_stream_sheds_its_oldest_events(self, served):
        _, gateway, _ = served
        stream = gateway.open_stream(max_events=2)
        try:
            for index in range(4):  # nobody drains: queue keeps newest 2
                gateway._fan_out("reply", {"seq": index})
            kept = [stream.get_nowait()[1]["seq"] for _ in range(2)]
            assert kept == [2, 3]
        finally:
            gateway.close_stream(stream)
