"""Supervision policy behaviours (role awareness, reply caps)."""

from __future__ import annotations

from repro import ELearningSystem, SystemConfig
from repro.chatroom import Role, SupervisionPolicy


class TestTeacherExemption:
    def test_teacher_not_supervised_by_default(self):
        system = ELearningSystem.with_defaults()
        system.open_room("r")
        system.join("r", "prof", Role.TEACHER)
        before = len(system.corpus)
        message = system.say("r", "prof", "I push the data into a tree.")
        assert system.agent_replies_to(message) == []
        assert len(system.corpus) == before
        assert system.stats.messages == 0
        assert system.profiles.get("prof") is None

    def test_teacher_supervision_can_be_enabled(self):
        config = SystemConfig(policy=SupervisionPolicy(supervise_teachers=True))
        system = ELearningSystem.with_defaults(config)
        system.open_room("r")
        system.join("r", "prof", Role.TEACHER)
        message = system.say("r", "prof", "I push the data into a tree.")
        assert system.agent_replies_to(message) != []
        assert system.stats.messages == 1

    def test_students_always_supervised(self):
        system = ELearningSystem.with_defaults()
        system.open_room("r")
        system.join("r", "kid")
        system.say("r", "kid", "I push the data into a tree.")
        assert system.stats.messages == 1

    def test_recommendations_skip_unsupervised_teachers(self):
        system = ELearningSystem.with_defaults()
        system.open_room("r")
        system.join("r", "prof", Role.TEACHER)
        system.say("r", "prof", "I push the data into a tree.")
        assert system.recommend_for("prof") is None


class TestReplyBehaviour:
    def test_learning_angel_reply_includes_repair(self):
        system = ELearningSystem.with_defaults()
        system.open_room("r")
        system.join("r", "kid")
        message = system.say("r", "kid", "The stacks is full.")
        replies = system.agent_replies_to(message)
        joined = " ".join(r.text for r in replies)
        assert "Did you mean" in joined

    def test_style_only_sentences_stay_quiet(self):
        # The paper's negation example has a missing article (style hint)
        # but must pass silently to the Semantic Agent.
        system = ELearningSystem.with_defaults()
        system.open_room("r")
        system.join("r", "kid")
        message = system.say("r", "kid", "The tree doesn't have pop method.")
        assert system.agent_replies_to(message) == []
        # ... but the style note is still recorded for the instructor.
        record = system.corpus.records()[-1]
        kinds = [kind for kind, _ in record.syntax_issues]
        assert "style" in kinds
