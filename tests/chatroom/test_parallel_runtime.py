"""Merge-determinism parity suite for the ``parallel`` runtime.

The acceptance gate of the shard-local-state PR:

* ``parallel`` (N workers on a thread pool, private corpus/profile/FAQ
  replicas, barrier merge) must produce merged corpus, profiles, FAQ
  and stats **bit-identical** to the ``queued`` deferred-drain pipeline
  on the same seeded workload and drain schedule — whatever the drain
  cadence or worker count;
* transcripts are bit-identical too, except for the one documented
  snapshot-isolation freedom: a faulty sentence's *suggestion reply
  text* may quote the barrier snapshot's best model sentence instead of
  one recorded earlier in the same batch (with single-item batches the
  transcripts are fully identical);
* results must be deterministic across repeated runs and worker counts
  (thread scheduling must not leak into outcomes);
* backpressure must shed oldest-first, count what it shed, and surface
  the counts through the runtime.
"""

from __future__ import annotations

import pytest

from repro.chatroom import MessageKind, Role, SupervisionRuntime
from repro.core.system import ELearningSystem, SystemConfig
from repro.ontology.domains import default_ontology
from repro.simulation import ErrorInjector, SentenceGenerator

ROOMS = ("algebra", "data-structures", "queues-101", "trees-201", "lists-5")


def scripted_messages(count: int = 8) -> list[tuple[str, str, str]]:
    """Deterministic (room, user, text) traffic with every kind mixed in:
    fan-out duplicates (the dedup path), questions, syntax errors,
    semantic violations and seeded generator chatter."""
    messages: list[tuple[str, str, str]] = []
    fixed = [
        "We push an element onto the stack.",
        "What is a queue?",
        "The tree doesn't have pop method.",
        "I push the data into a tree.",
        "stack the holds data quickly the.",
        "Thanks. What is Stack?",
        "The stacks is full.",
    ]
    for text in fixed:
        for room in ROOMS:
            messages.append((room, f"{room}-kid", text))
    generator = SentenceGenerator(default_ontology(), seed=13)
    injector = ErrorInjector(seed=13)
    for index in range(count):
        room = ROOMS[index % len(ROOMS)]
        correct = generator.correct_statement().text
        messages.append((room, f"{room}-kid", correct))
        messages.append((room, f"{room}-kid", injector.inject_random(correct).text))
        messages.append((room, f"{room}-kid", generator.question().text))
    return messages


def run_workload(config: SystemConfig, drain_every: int | None) -> ELearningSystem:
    system = ELearningSystem.with_defaults(config)
    for room in ROOMS:
        system.open_room(room, topic="t")
        system.join(room, f"{room}-kid")
        system.join(room, "prof", Role.TEACHER)
    for index, (room, user, text) in enumerate(scripted_messages()):
        system.say(room, user, text)
        if index % 11 == 0:
            system.say(room, "prof", "Good question.")
        if drain_every is not None and (index + 1) % drain_every == 0:
            system.drain()
    system.drain()
    return system


def full_state(system: ELearningSystem) -> dict:
    """Every durable surface, canonically ordered, bit-comparable."""
    return {
        "corpus": system.corpus.snapshot(),
        "profiles": system.profiles.snapshot(),
        "faq": system.faq.snapshot(),
        "stats": system.stats,
        "transcripts": {
            room: [
                (m.seq, m.sender, m.kind.value, m.text, m.timestamp, m.reply_to)
                for m in system.server.get_room(room).transcript
            ]
            for room in ROOMS
        },
    }


def parallel_config(workers: int) -> SystemConfig:
    return SystemConfig(runtime_mode="parallel", shards=workers)


SUGGESTION_PREFIX = "A similar correct sentence: "


def assert_transcripts_match(parallel: dict, queued: dict) -> None:
    """Transcripts must be bit-identical except suggestion reply text.

    Snapshot isolation lets a batched ``parallel`` drain quote a model
    sentence from the barrier snapshot where ``queued`` quotes one
    recorded earlier in the same batch; everything else — seqs, senders,
    kinds, timestamps, reply threading, every other reply text — must
    match exactly.
    """
    assert parallel.keys() == queued.keys()
    for room in queued:
        assert len(parallel[room]) == len(queued[room]), room
        for got, want in zip(parallel[room], queued[room]):
            if got == want:
                continue
            seq, sender, kind, got_text, timestamp, reply_to = got
            assert (seq, sender, kind, timestamp, reply_to) == (
                want[0], want[1], want[2], want[4], want[5]
            ), (got, want)
            assert got_text.startswith(SUGGESTION_PREFIX), (got, want)
            assert want[3].startswith(SUGGESTION_PREFIX), (got, want)


@pytest.fixture(scope="module")
def queued_states() -> dict:
    """Queued-runtime reference states, one per drain schedule."""
    return {
        drain_every: full_state(
            run_workload(SystemConfig(runtime_mode="queued", auto_drain=False), drain_every)
        )
        for drain_every in (1, 7, None)
    }


class TestMergedStateEqualsQueued:
    """parallel == queued, bit for bit, on every drain schedule."""

    @pytest.mark.parametrize("drain_every", [1, 7, None])
    def test_merged_stores_and_stats_bit_identical(self, queued_states, drain_every):
        parallel = full_state(run_workload(parallel_config(3), drain_every))
        reference = queued_states[drain_every]
        for surface in ("corpus", "profiles", "faq", "stats"):
            assert parallel[surface] == reference[surface], surface
        assert_transcripts_match(parallel["transcripts"], reference["transcripts"])

    def test_single_item_batches_are_fully_byte_identical(self, queued_states):
        parallel = full_state(run_workload(parallel_config(3), 1))
        assert parallel == queued_states[1]  # transcripts included

    def test_worker_count_does_not_change_merged_state(self, queued_states):
        reference = full_state(run_workload(parallel_config(1), 7))
        for surface in ("corpus", "profiles", "faq", "stats"):
            assert reference[surface] == queued_states[7][surface], surface
        for workers in (2, 5):
            parallel = full_state(run_workload(parallel_config(workers), 7))
            assert parallel == reference, f"workers={workers}"

    def test_deterministic_across_runs(self):
        first = full_state(run_workload(parallel_config(4), 9))
        second = full_state(run_workload(parallel_config(4), 9))
        assert first == second


class TestParallelScheduling:
    def test_posting_defers_supervision(self):
        system = ELearningSystem.with_defaults(parallel_config(2))
        system.open_room("r", topic="t")
        system.join("r", "kid")
        message = system.say("r", "kid", "I push the data into a tree.")
        assert system.pending_supervision == 1
        assert system.stats.messages == 0
        assert system.agent_replies_to(message) == []
        assert system.drain() == 1
        assert system.pending_supervision == 0
        assert system.stats.messages == 1
        assert system.agent_replies_to(message) != []
        assert system.drain() == 0

    def test_replies_flush_in_post_order(self):
        system = ELearningSystem.with_defaults(parallel_config(3))
        for room in ROOMS[:3]:
            system.open_room(room, topic="t")
            system.join(room, "kid")
        posted = [
            system.say(room, "kid", "stack the holds data quickly the.")
            for room in ROOMS[:3]
        ]
        system.drain()
        # Every user message got replies, and across rooms/shards the
        # replies were posted in the originating messages' seq order:
        # sorting all agent messages by their own seq must yield
        # non-decreasing reply_to targets.
        replies = sorted(
            (
                message
                for room in ROOMS[:3]
                for message in system.server.get_room(room).transcript
                if message.kind == MessageKind.AGENT
            ),
            key=lambda message: message.seq,
        )
        targets = [message.reply_to for message in replies]
        assert len({m.reply_to for m in replies}) == len(posted)  # all replied-to
        assert targets == sorted(targets)

    def test_worker_loads_cover_every_user_message(self):
        system = run_workload(parallel_config(4), 6)
        user_messages = sum(
            1
            for room in ROOMS
            for message in system.server.get_room(room).transcript
            if message.kind == MessageKind.USER
        )
        assert sum(system.runtime.worker_loads()) == user_messages

    def test_plain_observers_dispatched_at_barrier_in_post_order(self):
        class Spy:
            def __init__(self):
                self.seqs = []

            def on_message(self, server, message):
                self.seqs.append(message.seq)

        runtime = SupervisionRuntime(mode="parallel", shards=3)
        from repro.chatroom import ChatServer

        server = ChatServer(runtime=runtime)
        spy = Spy()
        server.add_supervisor(spy)
        for room in ("a", "b", "c", "d"):
            server.create_room(room)
            server.join(room, "u")
        expected = [server.post(room, "u", "hello").seq for room in ("a", "b", "c", "d")]
        assert spy.seqs == []  # deferred until the drain barrier
        server.drain_supervision()
        assert spy.seqs == expected


class TestBackpressure:
    def test_bounded_queue_sheds_oldest_first(self):
        system = ELearningSystem.with_defaults(
            SystemConfig(runtime_mode="queued", auto_drain=False, max_pending=2)
        )
        system.open_room("r", topic="t")
        system.join("r", "kid")
        texts = [f"What is a queue?", "What is a stack?", "We push an element onto the stack.",
                 "The stacks is full.", "I push the data into a tree."]
        for text in texts:
            system.say("r", "kid", text)
        assert system.pending_supervision == 2
        assert system.supervision_shed == 3
        system.drain()
        # Only the two *newest* messages were supervised.
        assert system.stats.messages == 2
        supervised = [r.text for r in system.corpus.records() if r.room == "r"]
        assert supervised == ["The stacks is full.", "I push the data into a tree."]

    def test_shed_counts_surface_per_shard_in_parallel_mode(self):
        config = SystemConfig(runtime_mode="parallel", shards=2, max_pending=3)
        system = ELearningSystem.with_defaults(config)
        system.open_room("r", topic="t")
        system.join("r", "kid")
        for _ in range(10):
            system.say("r", "kid", "What is a queue?")
        assert system.pending_supervision == 3
        assert system.supervision_shed == 7
        counts = system.runtime.shed_counts()
        assert sum(counts) == 7 and len(counts) == 2
        system.drain()
        assert system.stats.messages == 3
        assert system.supervision_shed == 7  # draining doesn't shed

    def test_unbounded_by_default(self):
        system = ELearningSystem.with_defaults(
            SystemConfig(runtime_mode="queued", auto_drain=False)
        )
        system.open_room("r", topic="t")
        system.join("r", "kid")
        for _ in range(100):
            system.say("r", "kid", "What is a queue?")
        assert system.pending_supervision == 100
        assert system.supervision_shed == 0

    def test_max_pending_validation(self):
        with pytest.raises(ValueError):
            SupervisionRuntime(mode="queued", max_pending=0)


class TestRuntimeConstruction:
    def test_parallel_keeps_requested_worker_count(self):
        assert SupervisionRuntime(mode="parallel", shards=6).shards == 6
        assert SupervisionRuntime(mode="queued", shards=6).shards == 1

    def test_parallel_defaults_to_deferred_drain(self):
        assert SupervisionRuntime(mode="parallel", shards=2).auto_drain is False
        assert SupervisionRuntime(mode="queued").auto_drain is True

    def test_close_is_idempotent(self):
        runtime = SupervisionRuntime(mode="parallel", shards=2)
        runtime.close()
        runtime.close()

    def test_system_close_releases_parallel_pool(self):
        with ELearningSystem.with_defaults(parallel_config(2)) as system:
            system.open_room("r", topic="t")
            system.join("r", "kid")
            system.say("r", "kid", "We push an element onto the stack.")
            system.drain()
        assert system.runtime._executor is None  # pool shut down on exit


class TestFailureIsolation:
    """A supervisor error mid-batch must cost exactly the failing item:
    it dead-letters into the quarantine store (with the captured error)
    and the rest of the batch is supervised in the same drain.  This is
    the regression test for the old behaviour, where the raising item
    itself was silently *lost* — the batch aborted, only the tail after
    it was requeued, and nothing recorded which message went down."""

    class _FailingSupervisor:
        def __init__(self):
            self.seen: list[str] = []

        def fork_shard(self):
            outer = self

            class Stores:
                def merge(self):
                    pass

                def rebase(self):
                    pass

                def take_replies(self):
                    return []

            class Fork:
                def on_item(self, server, item, memo=None):
                    if "boom" in item.message.text:
                        raise RuntimeError("supervisor blew up")
                    outer.seen.append(item.message.text)

            return Fork(), Stores()

    def test_failed_item_dead_letters_and_batch_continues(self):
        from repro.chatroom import ChatServer

        runtime = SupervisionRuntime(mode="parallel", shards=1)
        server = ChatServer(runtime=runtime)
        supervisor = self._FailingSupervisor()
        server.add_supervisor(supervisor)
        server.create_room("r")
        server.join("r", "u")
        posted = {}
        for text in ("alpha", "boom", "gamma", "delta"):
            posted[text] = server.post("r", "u", text)
        server.drain_supervision()  # no raise: the drain survives
        # boom dead-lettered, every other item supervised this drain.
        assert supervisor.seen == ["alpha", "gamma", "delta"]
        assert runtime.pending == 0
        quarantine = runtime.resilience.quarantine
        assert len(quarantine) == 1
        row = quarantine.get(posted["boom"].seq)
        assert row is not None
        assert row.text == "boom"
        assert "supervisor blew up" in row.error
        runtime.close()
