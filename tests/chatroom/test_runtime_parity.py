"""Runtime parity: queued/sharded supervision vs the synchronous pipeline.

The acceptance gate of the sharded-runtime PR:

* the default single-worker queued (drain-after-post) mode must produce
  transcripts, stats, corpus records and user profiles **bit-identical**
  to the inline synchronous pipeline on seeded runs;
* multi-shard runs must merge per-worker stats into exactly the sum of
  the parts, and conserve the work (every message supervised once);
* deferred-drain modes must actually defer: posting leaves agent work
  pending, draining flushes it.
"""

from __future__ import annotations

import pytest

from repro.chatroom import (
    ChatServer,
    MessageKind,
    Role,
    SupervisionRuntime,
    SupervisionStats,
    shard_of,
)
from repro.core.system import ELearningSystem, SystemConfig
from repro.ontology.domains import default_ontology
from repro.simulation import ErrorInjector, SentenceGenerator

ROOMS = ("algebra", "data-structures", "queues-101", "trees-201")


def scripted_messages(count: int = 10) -> list[tuple[str, str, str]]:
    """A deterministic (room, user, text) workload with every traffic kind.

    Repeats identical sentences across rooms (the dedup fan-out path),
    mixes questions, syntax errors, semantic violations, multi-sentence
    messages and chitchat from the seeded generator.
    """
    messages: list[tuple[str, str, str]] = []
    fixed = [
        "We push an element onto the stack.",
        "What is a queue?",
        "The tree doesn't have pop method.",
        "I push the data into a tree.",
        "stack the holds data quickly the.",
        "Thanks. What is Stack?",
        "The stacks is full.",
    ]
    # Same sentence fanned out to every room, then per-room traffic.
    for text in fixed:
        for room in ROOMS:
            messages.append((room, f"{room}-kid", text))
    generator = SentenceGenerator(default_ontology(), seed=11)
    injector = ErrorInjector(seed=11)
    for index in range(count):
        room = ROOMS[index % len(ROOMS)]
        correct = generator.correct_statement().text
        messages.append((room, f"{room}-kid", correct))
        messages.append((room, f"{room}-kid", injector.inject_random(correct).text))
        messages.append((room, f"{room}-kid", generator.question().text))
        messages.append((room, f"{room}-kid", generator.chitchat().text))
    return messages


def build_system(config: SystemConfig) -> ELearningSystem:
    system = ELearningSystem.with_defaults(config)
    for room in ROOMS:
        system.open_room(room, topic="t")
        system.join(room, f"{room}-kid")
        system.join(room, "prof", Role.TEACHER)
    return system


def run_workload(config: SystemConfig, drain_every: int | None = None) -> ELearningSystem:
    system = build_system(config)
    for index, (room, user, text) in enumerate(scripted_messages()):
        system.say(room, user, text)
        if index % 9 == 0:  # sprinkle teacher messages (unsupervised)
            system.say(room, "prof", "Good question.")
        if drain_every is not None and index % drain_every == 0:
            system.drain()
    system.drain()
    return system


def transcripts_of(system: ELearningSystem) -> dict[str, list]:
    return {room: list(system.server.get_room(room).transcript) for room in ROOMS}


def corpus_of(system: ELearningSystem) -> list[dict]:
    return [record.to_dict() for record in system.corpus.records()]


def profiles_of(system: ELearningSystem) -> list[dict]:
    return sorted((p.to_dict() for p in system.profiles.all()), key=lambda d: d["name"])


@pytest.fixture(scope="module")
def inline_system() -> ELearningSystem:
    return run_workload(SystemConfig(runtime_mode="inline"))


class TestQueuedModeIsByteIdentical:
    """Default mode: queued single worker, drained after every post."""

    @pytest.fixture(scope="class")
    def queued_system(self) -> ELearningSystem:
        return run_workload(SystemConfig(runtime_mode="queued"))

    def test_transcripts_identical(self, inline_system, queued_system):
        assert transcripts_of(queued_system) == transcripts_of(inline_system)

    def test_stats_identical(self, inline_system, queued_system):
        assert queued_system.stats == inline_system.stats

    def test_corpus_identical(self, inline_system, queued_system):
        assert corpus_of(queued_system) == corpus_of(inline_system)

    def test_profiles_identical(self, inline_system, queued_system):
        assert profiles_of(queued_system) == profiles_of(inline_system)

    def test_nothing_left_pending(self, queued_system):
        assert queued_system.pending_supervision == 0


class TestShardedMode:
    @pytest.fixture(scope="class")
    def sharded_system(self) -> ELearningSystem:
        return run_workload(
            SystemConfig(runtime_mode="sharded", shards=3), drain_every=5
        )

    def test_stats_merge_equals_worker_sum(self, sharded_system):
        per_worker = sharded_system.pipeline.worker_stats()
        assert len(per_worker) == 3
        assert sharded_system.stats == SupervisionStats.total(per_worker)

    def test_all_messages_supervised_exactly_once(self, inline_system, sharded_system):
        assert sharded_system.stats.messages == inline_system.stats.messages
        assert sharded_system.stats.sentences == inline_system.stats.sentences

    def test_verdict_counters_match_synchronous(self, inline_system, sharded_system):
        # Analysis outcomes are order-independent even though reply
        # timing differs: same syntax/semantic/question tallies.
        for field in ("syntax_errors", "semantic_violations", "misconceptions",
                      "questions", "questions_answered"):
            assert getattr(sharded_system.stats, field) == getattr(
                inline_system.stats, field
            ), field

    def test_corpus_same_verdict_multiset(self, inline_system, sharded_system):
        def verdicts(system):
            counts: dict = {}
            for record in system.corpus.records():
                key = (record.text, record.verdict.value)
                counts[key] = counts.get(key, 0) + 1
            return counts

        assert verdicts(sharded_system) == verdicts(inline_system)

    def test_worker_loads_cover_all_rooms(self, sharded_system):
        # Every posted user message (teacher ones included — the worker
        # processes the item, the pipeline then exempts it) is handled
        # by exactly one worker.
        loads = sharded_system.runtime.worker_loads()
        user_messages = sum(
            1
            for room in ROOMS
            for message in sharded_system.server.get_room(room).transcript
            if message.kind == MessageKind.USER
        )
        assert sum(loads) == user_messages
        assert sum(loads) > sharded_system.stats.messages  # prof posts exempted

    def test_rooms_route_to_fixed_shards(self, sharded_system):
        for room in ROOMS:
            expected = shard_of(room, 3)
            assert 0 <= expected < 3
            # Stable across calls and processes (CRC-32, not hash()).
            assert shard_of(room, 3) == expected


class TestDeferredDrain:
    def test_post_defers_supervision(self):
        system = build_system(SystemConfig(runtime_mode="queued", auto_drain=False))
        message = system.say(ROOMS[0], f"{ROOMS[0]}-kid", "I push the data into a tree.")
        assert system.pending_supervision == 1
        assert system.agent_replies_to(message) == []
        assert system.stats.messages == 0
        drained = system.drain()
        assert drained == 1
        assert system.pending_supervision == 0
        assert system.agent_replies_to(message) != []
        assert system.stats.messages == 1

    def test_drain_is_idempotent(self):
        system = build_system(SystemConfig(runtime_mode="queued", auto_drain=False))
        system.say(ROOMS[0], f"{ROOMS[0]}-kid", "What is Stack?")
        assert system.drain() == 1
        assert system.drain() == 0

    def test_teacher_role_snapshotted_at_post_time(self):
        # The role travels with the work item: a teacher message posted
        # before a drain stays exempt even after the teacher leaves.
        system = build_system(SystemConfig(runtime_mode="queued", auto_drain=False))
        system.say(ROOMS[0], "prof", "I push the data into a tree.")
        system.server.leave(ROOMS[0], "prof")
        system.drain()
        assert system.stats.messages == 0


class TestBatchMemoIsolation:
    def test_memo_shared_within_pipeline_but_not_across(self):
        from repro.agents.learning_angel import LearningAngelAgent
        from repro.agents.semantic_agent import SemanticAgent
        from repro.chatroom.supervisor import SupervisionPipeline
        from repro.linkgrammar.lexicon import default_dictionary
        from repro.profiles.store import UserProfileStore
        from repro.qa.engine import QASystem

        def pipeline() -> SupervisionPipeline:
            ontology = default_ontology()
            return SupervisionPipeline(
                LearningAngelAgent(default_dictionary()),
                SemanticAgent(ontology),
                QASystem(ontology),
                UserProfileStore(),
            )

        first, second = pipeline(), pipeline()
        clone = first.clone()
        memo: dict = {}
        sentence = "We push an element onto the stack."
        a = first._analyze_sentence(sentence, memo)
        # Clones share agents -> they reuse the prototype's entry...
        assert clone._analyze_sentence(sentence, memo) is a
        # ...an unrelated pipeline (own agents) never does.
        assert second._analyze_sentence(sentence, memo) is not a
        assert len(memo) == 2


class TestRuntimeConstruction:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SupervisionRuntime(mode="threads")

    def test_non_sharded_modes_single_worker(self):
        assert SupervisionRuntime(mode="queued", shards=8).shards == 1
        assert SupervisionRuntime(mode="inline", shards=8).shards == 1
        assert SupervisionRuntime(mode="sharded", shards=8).shards == 8

    def test_plain_observers_see_messages_in_all_modes(self):
        class Spy:
            def __init__(self):
                self.texts = []

            def on_message(self, server, message):
                self.texts.append(message.text)

        for mode in ("inline", "queued"):
            server = ChatServer(runtime=SupervisionRuntime(mode=mode))
            spy = Spy()
            server.add_supervisor(spy)
            server.create_room("r")
            server.join("r", "u")
            server.post("r", "u", "hello")
            server.post("r", "Agent", "reply", kind=MessageKind.AGENT)
            assert spy.texts == ["hello"], mode
