"""Acceptance suite for the ``process`` runtime and the drain budget.

The multiprocess-shard PR's gates:

* ``process`` (N shards, each drained in a long-lived child process,
  merged-delta shipped back per barrier) must produce merged corpus,
  profiles, FAQ and stats **bit-identical** to the ``queued``
  deferred-drain pipeline on the same seeded workload and drain
  schedule, for any worker count — the same contract the ``parallel``
  thread-pool mode carries, extended across the process boundary;
* the PR-7 failure contract survives the boundary: an item whose
  supervision raises *in the child* dead-letters into the parent's
  quarantine store and the rest of the batch is supervised in the same
  drain — and a child that dies outright (``BrokenProcessPool``) costs
  exactly the poison item, with the shard's pool rebuilt warm;
* a :class:`DrainBudget` drains a deferred-mode system from ``say()``
  alone: zero caller ``drain()`` calls, same final state.

The fast parity subset runs in tier 1; the full worker-count × drain
cadence sweep is ``@pytest.mark.slow``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import pytest

from repro.chatroom import ChatServer, DrainBudget, Role, SupervisionRuntime
from repro.core.system import ELearningSystem, SystemConfig

from test_parallel_runtime import (
    ROOMS,
    assert_transcripts_match,
    full_state,
    run_workload,
    scripted_messages,
)


def process_config(workers: int) -> SystemConfig:
    return SystemConfig(runtime_mode="process", shards=workers)


@pytest.fixture(scope="module")
def queued_reference() -> dict:
    """Queued-runtime reference states, one per drain schedule."""
    return {
        drain_every: full_state(
            run_workload(
                SystemConfig(runtime_mode="queued", auto_drain=False), drain_every
            )
        )
        for drain_every in (1, 7, None)
    }


def assert_state_matches(process: dict, queued: dict) -> None:
    for surface in ("corpus", "profiles", "faq", "stats"):
        assert process[surface] == queued[surface], surface
    assert_transcripts_match(process["transcripts"], queued["transcripts"])


class TestProcessParity:
    """process == queued, bit for bit, on the canonical store surfaces."""

    def test_two_worker_parity_fast(self, queued_reference):
        process = full_state(run_workload(process_config(2), 7))
        assert_state_matches(process, queued_reference[7])

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("drain_every", [1, 7, None])
    def test_full_sweep_workers_and_cadences(
        self, queued_reference, workers, drain_every
    ):
        process = full_state(run_workload(process_config(workers), drain_every))
        assert_state_matches(process, queued_reference[drain_every])

    @pytest.mark.slow
    def test_single_item_batches_are_fully_byte_identical(self, queued_reference):
        process = full_state(run_workload(process_config(3), 1))
        assert process == queued_reference[1]  # transcripts included

    def test_worker_loads_cover_every_shipped_message(self):
        from repro.chatroom import MessageKind

        system = run_workload(process_config(2), 7)
        user_messages = sum(
            1
            for room in ROOMS
            for message in system.server.get_room(room).transcript
            if message.kind == MessageKind.USER
        )
        assert sum(system.runtime.worker_loads()) == user_messages


# --------------------------------------------------------------- test double
#
# A minimal picklable supervisor implementing the full process-mode
# protocol (process_spec / absorb_shard_delta parent-side; a spec whose
# build() yields a ChildShard-compatible unit child-side).  Module-level
# on purpose: the child resolves the classes by qualified name when the
# shipped spec unpickles.


@dataclass
class _EchoPipeline:
    """Child-side stand-in for the pipeline: echo, raise, or kill."""

    outbox: list = field(default_factory=list)
    seen: list = field(default_factory=list)

    def on_item(self, server, item, memo=None):
        text = item.message.text
        if "hard-crash" in text:
            os._exit(13)  # simulate a segfaulting child
        if "boom" in text:
            raise RuntimeError("supervisor blew up")
        self.seen.append(text)
        self.outbox.append(
            (item.message.seq, 0, item.message.room, "echo-agent",
             f"saw {text}", item.message, "info")
        )


@dataclass
class _EchoStores:
    pipeline: _EchoPipeline

    def take_replies(self):
        replies, self.pipeline.outbox = self.pipeline.outbox, []
        return replies


@dataclass
class _EchoUnit:
    pipeline: _EchoPipeline = field(default_factory=_EchoPipeline)

    @property
    def stores(self):
        return _EchoStores(self.pipeline)

    def apply_sync(self, delta):
        pass

    def rebase(self):
        pass

    def extract_delta(self):
        seen, self.pipeline.seen = self.pipeline.seen, []
        return seen  # the texts supervised this cycle, shipped as-is

    def take_stats(self):
        return None


@dataclass
class _EchoSpec:
    def build(self, controller) -> _EchoUnit:
        return _EchoUnit()


class _EchoProcSupervisor:
    """Parent half: collects the child-shipped per-cycle deltas."""

    def __init__(self):
        self.absorbed: list[str] = []

    def process_spec(self) -> _EchoSpec:
        return _EchoSpec()

    def absorb_shard_delta(self, delta) -> int:
        self.absorbed.extend(delta)
        return 0


def _echo_runtime(shards: int = 1):
    runtime = SupervisionRuntime(mode="process", shards=shards)
    server = ChatServer(runtime=runtime)
    supervisor = _EchoProcSupervisor()
    server.add_supervisor(supervisor)
    server.create_room("r")
    server.join("r", "u")
    return runtime, server, supervisor


class TestChildFailureContract:
    """A child-side supervisor error costs exactly the failing item."""

    def test_raising_item_dead_letters_and_batch_continues(self):
        runtime, server, supervisor = _echo_runtime()
        posted = {}
        for text in ("alpha", "boom", "gamma", "delta"):
            posted[text] = server.post("r", "u", text)
        try:
            server.drain_supervision()  # no raise: the drain survives
            assert supervisor.absorbed == ["alpha", "gamma", "delta"]
            assert runtime.pending == 0
            quarantine = runtime.resilience.quarantine
            assert len(quarantine) == 1
            row = quarantine.get(posted["boom"].seq)
            assert row is not None
            assert row.text == "boom"
            assert "supervisor blew up" in row.error
        finally:
            runtime.close()

    def test_child_crash_isolates_poison_and_rebuilds_pool(self):
        runtime, server, supervisor = _echo_runtime()
        posted = {}
        for text in ("alpha", "hard-crash", "gamma", "delta"):
            posted[text] = server.post("r", "u", text)
        try:
            server.drain_supervision()  # no raise: the crash is contained
            # The poison dead-lettered with the dispatch-stage marker...
            quarantine = runtime.resilience.quarantine
            assert len(quarantine) == 1
            row = quarantine.get(posted["hard-crash"].seq)
            assert row is not None
            assert row.stage == "dispatch"
            assert "BrokenProcessPool" in row.error
            # ...every other item of the batch was supervised (the dead
            # child's cycle produced no side effects; the replay redid
            # the whole batch one item at a time on the rebuilt pool)...
            assert supervisor.absorbed == ["alpha", "gamma", "delta"]
            assert runtime.pending == 0
            # ...and the rebuilt pool keeps serving post-crash traffic.
            server.post("r", "u", "epsilon")
            server.drain_supervision()
            assert supervisor.absorbed[-1] == "epsilon"
        finally:
            runtime.close()

    def test_replies_from_children_flush_in_post_order(self):
        runtime, server, supervisor = _echo_runtime(shards=2)
        server.create_room("r2")
        server.join("r2", "u")
        expected = [
            server.post(room, "u", f"note {i}").seq
            for i, room in enumerate(("r", "r2", "r", "r2"))
        ]
        try:
            server.drain_supervision()
            replies = [
                m for m in server.get_room("r").transcript
                + server.get_room("r2").transcript
                if m.sender == "echo-agent"
            ]
            replies.sort(key=lambda m: m.seq)
            assert [m.reply_to for m in replies] == expected
        finally:
            runtime.close()


class TestDrainBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            DrainBudget(max_pending_posts=0)
        with pytest.raises(ValueError):
            DrainBudget(max_interval=0.0)

    def test_due_triggers(self):
        budget = DrainBudget(max_pending_posts=3, max_interval=10.0)
        assert not budget.due(2, 9.0)
        assert budget.due(3, 0.0)   # post-count trigger
        assert budget.due(0, 10.0)  # interval trigger
        assert not DrainBudget().due(10_000, 10_000.0)  # no trigger armed

    @pytest.mark.parametrize(
        "budget",
        [DrainBudget(max_pending_posts=5), DrainBudget(max_interval=4.0)],
        ids=["post-count", "interval"],
    )
    def test_budget_reaches_explicit_drain_state_with_zero_drain_calls(
        self, budget
    ):
        """A deferred system with a budget converges to the same final
        snapshot as an explicit-drain run — without the caller ever
        calling drain() (close() flushes the final partial batch)."""
        reference = full_state(
            run_workload(SystemConfig(runtime_mode="queued", auto_drain=False), 5)
        )

        config = SystemConfig(runtime_mode="process", shards=2, drain_budget=budget)
        system = ELearningSystem.with_defaults(config)
        drains = {"n": 0}
        inner_drain = system.server.drain_supervision

        def counting_drain():
            drains["n"] += 1
            return inner_drain()

        system.server.drain_supervision = counting_drain
        for room in ROOMS:
            system.open_room(room, topic="t")
            system.join(room, f"{room}-kid")
            system.join(room, "prof", Role.TEACHER)
        for index, (room, user, text) in enumerate(scripted_messages()):
            system.say(room, user, text)
            if index % 11 == 0:
                system.say(room, "prof", "Good question.")
        assert drains["n"] > 0  # the budget fired mid-traffic on its own
        system.close()  # flushes the tail unconditionally
        assert system.supervision_backlog == 0
        state = full_state(system)
        for surface in ("corpus", "profiles", "faq", "stats"):
            assert state[surface] == reference[surface], surface

    def test_budget_ignored_by_auto_drain_modes(self):
        config = SystemConfig(
            runtime_mode="queued", drain_budget=DrainBudget(max_pending_posts=1)
        )
        system = ELearningSystem.with_defaults(config)
        system.open_room("r", topic="t")
        system.join("r", "kid")
        system.say("r", "kid", "What is a queue?")  # would recurse otherwise
        assert system.stats.messages == 1
        system.close()


class TestLifecycle:
    def test_runtime_close_is_idempotent(self):
        runtime, server, _ = _echo_runtime()
        server.post("r", "u", "alpha")
        server.drain_supervision()
        runtime.close()
        runtime.close()

    def test_system_close_drains_backlog_and_is_idempotent(self):
        system = ELearningSystem.with_defaults(process_config(2))
        system.open_room("r", topic="t")
        system.join("r", "kid")
        system.say("r", "kid", "I push the data into a tree.")
        assert system.pending_supervision == 1
        system.close()  # in-memory system: the backlog still drains
        assert system.supervision_backlog == 0
        assert system.stats.messages == 1
        assert system.runtime._pools is None  # child processes released
        system.close()  # idempotent

    def test_adding_supervisors_after_pool_start_fails_loudly(self):
        runtime, server, _ = _echo_runtime()
        try:
            server.post("r", "u", "alpha")
            server.drain_supervision()  # pools are warm now
            with pytest.raises(RuntimeError, match="process pool started"):
                runtime.add_supervisor(_EchoProcSupervisor())
        finally:
            runtime.close()
