"""Transcript persistence and offline mining adaptation."""

from __future__ import annotations

from repro import ELearningSystem
from repro.chatroom.transcript_io import as_mining_lines, load_transcript, save_transcript


def _session():
    system = ELearningSystem.with_defaults()
    system.open_room("r", topic="t")
    system.join("r", "alice")
    system.say("r", "alice", "What is Stack?")
    system.say("r", "alice", "I push the data into a tree.")
    return system


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        system = _session()
        room = system.server.get_room("r")
        path = tmp_path / "t.jsonl"
        count = save_transcript(room, path)
        messages = load_transcript(path)
        assert count == len(messages) == len(room.transcript)
        for original, loaded in zip(room.transcript, messages):
            assert original == loaded

    def test_agent_messages_preserved(self, tmp_path):
        system = _session()
        path = tmp_path / "t.jsonl"
        save_transcript(system.server.get_room("r"), path)
        kinds = {m.kind.value for m in load_transcript(path)}
        assert "agent" in kinds and "user" in kinds

    def test_empty_room(self, tmp_path):
        system = ELearningSystem.with_defaults()
        system.open_room("empty")
        path = tmp_path / "e.jsonl"
        assert save_transcript(system.server.get_room("empty"), path) == 0
        assert load_transcript(path) == []


class TestMiningAdapter:
    def test_agents_filtered_out(self, tmp_path):
        system = _session()
        path = tmp_path / "t.jsonl"
        save_transcript(system.server.get_room("r"), path)
        lines = as_mining_lines(load_transcript(path))
        assert all(line.user == "alice" for line in lines)
        assert len(lines) == 2

    def test_teacher_role_mapping(self, tmp_path):
        system = ELearningSystem.with_defaults()
        system.open_room("r")
        from repro.chatroom import Role

        system.join("r", "prof", Role.TEACHER)
        system.say("r", "prof", "A stack is a lifo structure.")
        path = tmp_path / "t.jsonl"
        save_transcript(system.server.get_room("r"), path)
        lines = as_mining_lines(load_transcript(path), teacher_names=frozenset({"prof"}))
        assert lines[0].role == "teacher"
