"""Chat-room substrate: clock, rooms, server, events, ordering."""

from __future__ import annotations

import pytest

from repro.chatroom import (
    AgentIntervened,
    ChatMessage,
    ChatRoomError,
    ChatServer,
    EventBus,
    MessageDelivered,
    MessageKind,
    Role,
    SimulatedClock,
    UserJoined,
)


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance_default_tick(self):
        clock = SimulatedClock(tick=2.0)
        clock.advance()
        assert clock.now() == 2.0

    def test_advance_explicit(self):
        clock = SimulatedClock()
        clock.advance(0.5)
        assert clock.now() == 0.5

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestRoomsAndMembership:
    def test_create_and_join(self):
        server = ChatServer()
        server.create_room("r1", topic="stacks")
        server.join("r1", "alice")
        assert server.get_room("r1").is_member("alice")

    def test_duplicate_room_rejected(self):
        server = ChatServer()
        server.create_room("r1")
        with pytest.raises(ChatRoomError):
            server.create_room("r1")

    def test_unknown_room(self):
        with pytest.raises(ChatRoomError):
            ChatServer().get_room("ghost")

    def test_post_requires_membership(self):
        server = ChatServer()
        server.create_room("r1")
        with pytest.raises(ChatRoomError):
            server.post("r1", "stranger", "hi")

    def test_agents_post_without_membership(self):
        server = ChatServer()
        server.create_room("r1")
        message = server.post("r1", "Agent", "hello", kind=MessageKind.AGENT)
        assert message.seq == 0

    def test_leave(self):
        server = ChatServer()
        server.create_room("r1")
        server.join("r1", "alice")
        server.leave("r1", "alice")
        assert not server.get_room("r1").is_member("alice")

    def test_roles(self):
        server = ChatServer()
        server.create_room("r1")
        server.join("r1", "prof", Role.TEACHER)
        assert server.role_of("r1", "prof") == Role.TEACHER
        assert server.role_of("r1", "ghost") is None


class TestOrdering:
    def test_global_sequence_is_total_order(self):
        server = ChatServer()
        server.create_room("a")
        server.create_room("b")
        server.join("a", "u")
        server.join("b", "u")
        m1 = server.post("a", "u", "one")
        m2 = server.post("b", "u", "two")
        m3 = server.post("a", "u", "three")
        assert (m1.seq, m2.seq, m3.seq) == (0, 1, 2)

    def test_transcript_in_delivery_order(self):
        server = ChatServer()
        server.create_room("a")
        server.join("a", "u")
        for i in range(5):
            server.post("a", "u", f"m{i}")
        seqs = [m.seq for m in server.get_room("a").transcript]
        assert seqs == sorted(seqs)

    def test_out_of_order_delivery_rejected(self):
        from repro.chatroom.room import ChatRoom

        room = ChatRoom(name="x")
        room.deliver(ChatMessage(5, "x", "u", MessageKind.USER, "hi", 0.0))
        with pytest.raises(ChatRoomError):
            room.deliver(ChatMessage(4, "x", "u", MessageKind.USER, "again", 1.0))

    def test_timestamps_from_clock(self):
        clock = SimulatedClock()
        server = ChatServer(clock)
        server.create_room("a")
        server.join("a", "u")
        clock.advance(7.0)
        message = server.post("a", "u", "hi")
        assert message.timestamp == 7.0


class TestEvents:
    def test_join_event(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(UserJoined, events.append)
        server.create_room("a")
        server.join("a", "alice")
        assert len(events) == 1
        assert events[0].user == "alice"

    def test_delivery_event(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(MessageDelivered, events.append)
        server.create_room("a")
        server.join("a", "u")
        server.post("a", "u", "hi")
        assert events[0].message.text == "hi"

    def test_agent_intervention_event(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(AgentIntervened, events.append)
        server.create_room("a")
        server.join("a", "u")
        message = server.post("a", "u", "hi")
        server.post_agent_reply("a", "Agent", "reply", message, "warning")
        assert events[0].agent == "Agent"
        assert events[0].in_reply_to == message.seq

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        bus.publish(UserJoined("a", "u", "student", 0.0))
        assert len(seen) == 1


class TestSupervisors:
    def test_supervisor_sees_user_messages_only(self):
        server = ChatServer()
        seen = []

        class Spy:
            def on_message(self, srv, message):
                seen.append(message.text)

        server.add_supervisor(Spy())
        server.create_room("a")
        server.join("a", "u")
        server.post("a", "u", "user message")
        server.post("a", "Agent", "agent message", kind=MessageKind.AGENT)
        assert seen == ["user message"]

    def test_message_counter(self):
        server = ChatServer()
        server.create_room("a")
        server.join("a", "u")
        server.post("a", "u", "one")
        server.post("a", "u", "two")
        assert server.total_messages() == 2
        assert server.get_room("a").participants["u"].messages_sent == 2
