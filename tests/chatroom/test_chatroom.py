"""Chat-room substrate: clock, rooms, server, events, ordering."""

from __future__ import annotations

import pytest

from repro.chatroom import (
    AgentIntervened,
    ChatMessage,
    ChatRoomError,
    ChatServer,
    EventBus,
    MessageDelivered,
    MessageKind,
    Role,
    SimulatedClock,
    UserJoined,
    UserLeft,
)


class TestClock:
    def test_starts_at_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance_default_tick(self):
        clock = SimulatedClock(tick=2.0)
        clock.advance()
        assert clock.now() == 2.0

    def test_advance_explicit(self):
        clock = SimulatedClock()
        clock.advance(0.5)
        assert clock.now() == 0.5

    def test_no_time_travel(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)


class TestRoomsAndMembership:
    def test_create_and_join(self):
        server = ChatServer()
        server.create_room("r1", topic="stacks")
        server.join("r1", "alice")
        assert server.get_room("r1").is_member("alice")

    def test_duplicate_room_rejected(self):
        server = ChatServer()
        server.create_room("r1")
        with pytest.raises(ChatRoomError):
            server.create_room("r1")

    def test_unknown_room(self):
        with pytest.raises(ChatRoomError):
            ChatServer().get_room("ghost")

    def test_post_requires_membership(self):
        server = ChatServer()
        server.create_room("r1")
        with pytest.raises(ChatRoomError):
            server.post("r1", "stranger", "hi")

    def test_agents_post_without_membership(self):
        server = ChatServer()
        server.create_room("r1")
        message = server.post("r1", "Agent", "hello", kind=MessageKind.AGENT)
        assert message.seq == 0

    def test_leave(self):
        server = ChatServer()
        server.create_room("r1")
        server.join("r1", "alice")
        server.leave("r1", "alice")
        assert not server.get_room("r1").is_member("alice")

    def test_roles(self):
        server = ChatServer()
        server.create_room("r1")
        server.join("r1", "prof", Role.TEACHER)
        assert server.role_of("r1", "prof") == Role.TEACHER
        assert server.role_of("r1", "ghost") is None


class TestOrdering:
    def test_global_sequence_is_total_order(self):
        server = ChatServer()
        server.create_room("a")
        server.create_room("b")
        server.join("a", "u")
        server.join("b", "u")
        m1 = server.post("a", "u", "one")
        m2 = server.post("b", "u", "two")
        m3 = server.post("a", "u", "three")
        assert (m1.seq, m2.seq, m3.seq) == (0, 1, 2)

    def test_transcript_in_delivery_order(self):
        server = ChatServer()
        server.create_room("a")
        server.join("a", "u")
        for i in range(5):
            server.post("a", "u", f"m{i}")
        seqs = [m.seq for m in server.get_room("a").transcript]
        assert seqs == sorted(seqs)

    def test_out_of_order_delivery_rejected(self):
        from repro.chatroom.room import ChatRoom

        room = ChatRoom(name="x")
        room.deliver(ChatMessage(5, "x", "u", MessageKind.USER, "hi", 0.0))
        with pytest.raises(ChatRoomError):
            room.deliver(ChatMessage(4, "x", "u", MessageKind.USER, "again", 1.0))

    def test_timestamps_from_clock(self):
        clock = SimulatedClock()
        server = ChatServer(clock)
        server.create_room("a")
        server.join("a", "u")
        clock.advance(7.0)
        message = server.post("a", "u", "hi")
        assert message.timestamp == 7.0


class TestEvents:
    def test_join_event(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(UserJoined, events.append)
        server.create_room("a")
        server.join("a", "alice")
        assert len(events) == 1
        assert events[0].user == "alice"

    def test_delivery_event(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(MessageDelivered, events.append)
        server.create_room("a")
        server.join("a", "u")
        server.post("a", "u", "hi")
        assert events[0].message.text == "hi"

    def test_agent_intervention_event(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(AgentIntervened, events.append)
        server.create_room("a")
        server.join("a", "u")
        message = server.post("a", "u", "hi")
        server.post_agent_reply("a", "Agent", "reply", message, "warning")
        assert events[0].agent == "Agent"
        assert events[0].in_reply_to == message.seq

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe(None, seen.append)
        bus.publish(UserJoined("a", "u", "student", 0.0))
        assert len(seen) == 1


class TestSupervisors:
    def test_supervisor_sees_user_messages_only(self):
        server = ChatServer()
        seen = []

        class Spy:
            def on_message(self, srv, message):
                seen.append(message.text)

        server.add_supervisor(Spy())
        server.create_room("a")
        server.join("a", "u")
        server.post("a", "u", "user message")
        server.post("a", "Agent", "agent message", kind=MessageKind.AGENT)
        assert seen == ["user message"]

    def test_message_counter(self):
        server = ChatServer()
        server.create_room("a")
        server.join("a", "u")
        server.post("a", "u", "one")
        server.post("a", "u", "two")
        assert server.total_messages() == 2
        assert server.get_room("a").participants["u"].messages_sent == 2


class TestMembershipRegressions:
    """Regression coverage for the join/leave bookkeeping fixes:
    phantom UserLeft on non-member leaves and role changes that were
    silently dropped on rejoin."""

    def test_leave_of_non_member_publishes_nothing(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(UserLeft, events.append)
        server.create_room("a")
        assert server.leave("a", "ghost") is False
        assert events == []

    def test_leave_of_member_publishes_once_and_returns_true(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(UserLeft, events.append)
        server.create_room("a")
        server.join("a", "alice")
        assert server.leave("a", "alice") is True
        assert [event.user for event in events] == ["alice"]
        # The second leave is the no-op case again.
        assert server.leave("a", "alice") is False
        assert len(events) == 1

    def test_rejoin_same_role_is_a_noop(self):
        server = ChatServer()
        events = []
        server.bus.subscribe(UserJoined, events.append)
        server.create_room("a")
        assert server.join("a", "alice") is True
        assert server.join("a", "alice") is False
        assert len(events) == 1

    def test_rejoin_with_new_role_changes_role_in_place(self):
        clock = SimulatedClock()
        server = ChatServer(clock)
        events = []
        server.bus.subscribe(UserJoined, events.append)
        server.create_room("a")
        server.join("a", "alice")
        joined_at = server.get_room("a").participants["alice"].joined_at
        server.post("a", "alice", "hi")
        clock.advance(5.0)
        assert server.join("a", "alice", Role.TEACHER) is True
        participant = server.get_room("a").participants["alice"]
        # Role change, not a fresh membership: tenure and counters survive.
        assert participant.role is Role.TEACHER
        assert participant.joined_at == joined_at
        assert participant.messages_sent == 1
        assert [event.role for event in events] == ["student", "teacher"]


class TestMessagesSince:
    def room_with(self, seqs):
        from repro.chatroom.room import ChatRoom

        room = ChatRoom(name="x")
        for seq in seqs:
            room.deliver(ChatMessage(seq, "x", "u", MessageKind.USER, f"m{seq}", 0.0))
        return room

    def test_minus_one_returns_full_transcript(self):
        room = self.room_with([0, 1, 2])
        assert [m.seq for m in room.messages_since(-1)] == [0, 1, 2]

    def test_cursor_is_strictly_greater_than(self):
        room = self.room_with([0, 1, 2, 3])
        assert [m.seq for m in room.messages_since(1)] == [2, 3]

    def test_cursor_between_gapped_seqs(self):
        # Global seqs interleave across rooms, so a room's transcript has
        # gaps; a cursor inside a gap resumes at the next delivered seq.
        room = self.room_with([2, 5, 9])
        assert [m.seq for m in room.messages_since(3)] == [5, 9]
        assert [m.seq for m in room.messages_since(5)] == [9]

    def test_cursor_past_end_is_empty(self):
        room = self.room_with([0, 1])
        assert room.messages_since(1) == []
        assert room.messages_since(99) == []

    def test_matches_linear_scan(self):
        room = self.room_with(list(range(0, 40, 3)))
        for cursor in range(-1, 45):
            expected = [m for m in room.transcript if m.seq > cursor]
            assert room.messages_since(cursor) == expected
