"""The QA subsystem: templates, engine, FAQ accumulation (section 4.4)."""

from __future__ import annotations

import pytest

from repro.corpus import CorporaGenerator, LearnerCorpus
from repro.nlp import KeywordFilter
from repro.ontology.domains import default_ontology
from repro.ontology.domains.data_structures import STACK_DESCRIPTION
from repro.qa import FAQDatabase, QASystem, QuestionKind, TemplateMatcher


@pytest.fixture(scope="module")
def matcher():
    return TemplateMatcher(KeywordFilter(default_ontology()))


@pytest.fixture()
def qa():
    return QASystem(default_ontology())


class TestTemplates:
    @pytest.mark.parametrize(
        "question, kind",
        [
            ("What is Stack?", QuestionKind.DEFINITION),
            ("What is a binary search tree?", QuestionKind.DEFINITION),
            ("Define stack.", QuestionKind.DEFINITION),
            ("The relations of stack?", QuestionKind.RELATIONS),
            ("What are the relations of the queue?", QuestionKind.RELATIONS),
            ("Does stack have pop method?", QuestionKind.HAS_OPERATION),
            ("Is stack has push method?", QuestionKind.HAS_OPERATION),
            ("Does the hash table support lookup?", QuestionKind.HAS_OPERATION),
            ("Which data structure has the method push?", QuestionKind.WHICH_HAS),
            ("Which structure has the enqueue operation?", QuestionKind.WHICH_HAS),
            ("What operations does the tree support?", QuestionKind.OPERATIONS_OF),
            ("Is the stack lifo?", QuestionKind.PROPERTY),
            ("Is a stack a data structure?", QuestionKind.IS_A),
            ("How is the weather?", QuestionKind.UNKNOWN),
        ],
    )
    def test_kind(self, matcher, question, kind):
        assert matcher.match(question).kind == kind, question

    def test_bound_items(self, matcher):
        match = matcher.match("Does stack have pop method?")
        assert [k.name for k in match.concepts] == ["stack"]
        assert [k.name for k in match.operations] == ["pop"]


class TestAnswers:
    def test_paper_definition_answer(self, qa):
        answer = qa.answer("What is Stack?")
        assert answer.answered
        assert answer.text == STACK_DESCRIPTION

    def test_which_has_push_names_stack(self, qa):
        answer = qa.answer("Which data structure has the method push?")
        assert answer.answered
        assert "stack" in answer.text

    def test_has_operation_yes(self, qa):
        answer = qa.answer("Does stack have pop method?")
        assert answer.text.startswith("Yes")

    def test_has_operation_no_with_hint(self, qa):
        answer = qa.answer("Does the tree have a pop method?")
        assert answer.text.startswith("No")
        assert "stack" in answer.text

    def test_learner_english_template(self, qa):
        answer = qa.answer("Is stack has push method?")
        assert answer.text.startswith("Yes")

    def test_relations_list(self, qa):
        answer = qa.answer("The relations of stack?")
        assert "is-a" in answer.text
        assert "has-operation" in answer.text

    def test_operations_of(self, qa):
        answer = qa.answer("What operations does the stack support?")
        for name in ("push", "pop", "peek"):
            assert name in answer.text

    def test_property_yes_no(self, qa):
        assert qa.answer("Is the stack lifo?").text.startswith("Yes")
        assert qa.answer("Is the queue lifo?").text.startswith("No")

    def test_is_a(self, qa):
        assert qa.answer("Is a stack a data structure?").text.startswith("Yes")
        assert qa.answer("Is a heap a binary tree?").text.startswith("Yes")

    def test_unanswerable(self, qa):
        answer = qa.answer("How is the weather?")
        assert not answer.answered
        assert answer.source == "none"

    def test_corpus_fallback(self):
        corpus = LearnerCorpus()
        CorporaGenerator(default_ontology()).populate(corpus)
        qa = QASystem(default_ontology(), corpus=corpus)
        # No template matches, but the keyword is known: fall back to a
        # correct corpus sentence mentioning it.
        answer = qa.answer("Tell me about the heap please?")
        assert answer.answered
        assert answer.source in ("corpus", "ontology")


class TestFAQAccumulation:
    def test_repeat_question_hits_faq(self, qa):
        first = qa.answer("What is Stack?")
        second = qa.answer("what is stack")
        assert first.source == "ontology"
        assert second.source == "faq"
        assert second.text == first.text

    def test_paraphrases_share_entry(self, qa):
        qa.answer("Does stack have pop method?")
        qa.answer("Does the stack have a pop method?")
        pairs = qa.faq.pairs()
        assert len(pairs) == 1
        assert pairs[0].count == 2

    def test_top_sorted_by_frequency(self, qa):
        for _ in range(3):
            qa.answer("What is Stack?")
        qa.answer("What is a queue?")
        top = qa.faq.top(2)
        assert top[0].count == 3
        assert "stack" in top[0].question.lower()

    def test_total_questions(self, qa):
        qa.answer("What is Stack?")
        qa.answer("What is Stack?")
        assert qa.faq.total_questions() == 2

    def test_faq_round_trip(self, qa, tmp_path):
        qa.answer("What is Stack?")
        path = tmp_path / "faq.jsonl"
        qa.faq.save(path)
        loaded = FAQDatabase.load(path)
        assert len(loaded) == 1
        assert loaded.pairs()[0].kind == QuestionKind.DEFINITION
