"""QA-pair mining from chat transcripts (section 4.4 data mining)."""

from __future__ import annotations

import pytest

from repro.nlp import KeywordFilter
from repro.ontology.domains import default_ontology
from repro.qa import FAQDatabase, QAMiner, TranscriptLine


@pytest.fixture(scope="module")
def miner():
    return QAMiner(KeywordFilter(default_ontology()))


def _line(user: str, text: str, t: float, role: str = "student") -> TranscriptLine:
    return TranscriptLine(user=user, text=text, timestamp=t, role=role)


class TestMining:
    def test_simple_pair(self, miner):
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("bob", "A stack is a lifo data structure.", 2.0),
        ]
        (pair,) = miner.mine(transcript)
        assert pair.question.user == "alice"
        assert pair.answer.user == "bob"
        assert pair.overlap >= 1

    def test_self_answers_ignored(self, miner):
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("alice", "A stack is a lifo structure.", 2.0),
        ]
        assert miner.mine(transcript) == []

    def test_off_topic_replies_ignored(self, miner):
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("bob", "The weather is nice.", 2.0),
        ]
        assert miner.mine(transcript) == []

    def test_teacher_preferred(self, miner):
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("bob", "A stack is a thing with push.", 2.0),
            _line("prof", "A stack is a lifo structure with push and pop.", 3.0, role="teacher"),
        ]
        (pair,) = miner.mine(transcript)
        assert pair.answer.user == "prof"
        assert pair.teacher_answer

    def test_window_limits_search(self):
        miner = QAMiner(KeywordFilter(default_ontology()), window=1)
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("carol", "I like queues.", 2.0),
            _line("bob", "A stack is a lifo structure.", 3.0),
        ]
        assert miner.mine(transcript) == []

    def test_questions_are_not_answers(self, miner):
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("bob", "Is a stack a list?", 2.0),
        ]
        assert miner.mine(transcript) == []

    def test_feed_faq(self, miner):
        faq = FAQDatabase()
        transcript = [
            _line("alice", "What is a stack?", 1.0),
            _line("prof", "A stack is a lifo structure.", 2.0, role="teacher"),
            _line("dan", "What is a stack?", 3.0),
            _line("prof", "A stack is a lifo structure.", 4.0, role="teacher"),
        ]
        added = miner.feed_faq(transcript, faq)
        assert added == 2
        (pair,) = faq.pairs()
        assert pair.count == 2
        assert pair.source == "mined"
