"""QA batching: ``answer`` = pure ``resolve`` + per-item apply.

The ROADMAP item: ``QASystem.answer`` used to run template matching and
the ontology computation per asking, with the FAQ bump as a side
effect.  The split mirrors the supervision pipeline's analysis/apply
separation — resolutions are pure and memoisable across a drain batch,
the FAQ bump and cache lookup stay per item — and must be byte-identical
to the unsplit path.
"""

from __future__ import annotations

import pytest

from repro.ontology.domains import default_ontology
from repro.qa.engine import QASystem
from repro.qa.faq import FAQDatabase
from repro.qa.templates import TemplateMatcher

QUESTIONS = [
    "What is a stack?",
    "Does the stack have the pop operation?",
    "Which data structures have the push operation?",
    "What operations does the queue support?",
    "Is a binary tree a tree?",
    "what is Stack",
]


class TestSplitEquivalence:
    def test_apply_of_resolve_equals_answer(self):
        """Same questions, same order → identical answers and FAQ."""
        unsplit, split = QASystem(default_ontology()), QASystem(default_ontology())
        for now, question in enumerate(QUESTIONS * 2):
            direct = unsplit.answer(question, now=float(now))
            via_split = split.apply_resolution(split.resolve(question), now=float(now))
            assert direct == via_split
        assert unsplit.faq.snapshot() == split.faq.snapshot()

    def test_second_asking_is_a_faq_hit(self):
        qa = QASystem(default_ontology())
        resolution = qa.resolve("What is a stack?")
        first = qa.apply_resolution(resolution, now=1.0)
        second = qa.apply_resolution(resolution, now=2.0)
        assert first.source == "ontology" and not first.is_faq_hit
        assert second.is_faq_hit
        assert second.text == first.text
        pair = qa.faq.pairs()[0]
        assert pair.count == 2
        assert (pair.first_asked, pair.last_asked) == (1.0, 2.0)


class TestResolutionIsComputedOnce:
    def test_shared_resolution_computes_the_ontology_answer_once(self, monkeypatch):
        qa = QASystem(default_ontology())
        calls = []
        original = QASystem._compute

        def counting(self, match):
            calls.append(match.kind)
            return original(self, match)

        monkeypatch.setattr(QASystem, "_compute", counting)
        resolution = qa.resolve("What is a stack?")
        assert calls == []  # resolve is lazy: no computation yet
        answers = [qa.apply_resolution(resolution, now=float(i)) for i in range(4)]
        assert len(calls) == 1  # computed once, reused by every apply
        assert all(answer.answered for answer in answers)
        assert qa.faq.pairs()[0].count == 4

    def test_faq_hit_never_computes(self, monkeypatch):
        qa = QASystem(default_ontology())
        qa.answer("What is a stack?", now=0.0)  # prime the FAQ

        def boom(self, match):
            raise AssertionError("FAQ hit must not recompute the answer")

        monkeypatch.setattr(QASystem, "_compute", boom)
        answer = qa.apply_resolution(qa.resolve("what is Stack"), now=1.0)
        assert answer.is_faq_hit


class TestPipelineBatchResolution:
    def test_drain_batch_resolves_identical_questions_once(self, monkeypatch):
        """Five rooms ask the same question in one drain batch: one
        template match, five FAQ bumps, five answers posted."""
        from repro.core.system import ELearningSystem, SystemConfig

        system = ELearningSystem.with_defaults(
            SystemConfig(runtime_mode="queued", auto_drain=False)
        )
        rooms = [f"r{i}" for i in range(5)]
        for room in rooms:
            system.open_room(room, topic="t")
            system.join(room, "kid")

        matches = []
        original = TemplateMatcher.match

        def counting(self, text):
            result = original(self, text)
            matches.append(getattr(text, "raw", text))
            return result

        monkeypatch.setattr(TemplateMatcher, "match", counting)
        for room in rooms:
            system.say(room, "kid", "What is a queue?")
        assert matches == []  # deferred
        system.drain()
        assert len(matches) == 1  # resolved once for the whole batch
        assert system.stats.questions == 5
        assert system.stats.questions_answered == 5
        assert system.stats.faq_hits == 4  # first computes, rest hit
        assert system.faq.total_questions() == 5

    def test_parallel_batch_matches_queued_counters(self):
        from repro.core.system import ELearningSystem, SystemConfig

        def run(mode, shards):
            system = ELearningSystem.with_defaults(
                SystemConfig(runtime_mode=mode, shards=shards, auto_drain=False)
            )
            rooms = [f"r{i}" for i in range(5)]
            for room in rooms:
                system.open_room(room, topic="t")
                system.join(room, "kid")
            for room in rooms:
                system.say(room, "kid", "What is a queue?")
            system.drain()
            return system

        queued = run("queued", 1)
        parallel = run("parallel", 3)
        assert parallel.stats == queued.stats
        assert parallel.faq.snapshot() == queued.faq.snapshot()


class TestFAQReplicaSemantics:
    def test_replica_bumps_fold_into_base_counts(self):
        qa = QASystem(default_ontology())
        base: FAQDatabase = qa.faq
        qa.answer("What is a stack?", now=0.0)
        replica = base.fork()
        shard_qa = qa.fork(faq=replica)
        replica.begin_origin(1)
        answer = shard_qa.answer("what is Stack", now=1.0)
        assert answer.is_faq_hit  # base pair visible through the replica
        assert base.pairs()[0].count == 1  # ...but the bump is buffered
        base.merge(replica)
        replica.rebase()
        assert base.pairs()[0].count == 2
        assert base.pairs()[0].last_asked == 1.0
