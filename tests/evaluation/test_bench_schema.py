"""The committed BENCH_parse.json must match the repro-bench/1 schema.

Perf PRs extend the report; this tier-1 gate fails fast when a workload
or metric silently disappears, the seed baseline gets clobbered, or the
speedup section stops being numeric."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.evaluation.perfbench import REQUIRED_WORKLOAD_METRICS, validate_report

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_parse.json"


@pytest.fixture(scope="module")
def report() -> dict:
    return json.loads(BENCH_PATH.read_text(encoding="utf-8"))


class TestCommittedReport:
    def test_file_exists(self):
        assert BENCH_PATH.exists(), "BENCH_parse.json missing at repo root"

    def test_validates_against_schema(self, report):
        validate_report(report)  # raises on shape regressions

    def test_seed_baseline_pinned(self, report):
        assert "seed_baseline" in report, "seed baseline was dropped"
        assert report["seed_baseline"]["supervision_throughput"]["messages_per_sec"] > 0

    def test_runtime_workloads_present(self, report):
        workloads = report["workloads"]
        assert workloads["post_latency"]["pending_after"] > 0  # drain deferred
        scale = workloads["multi_room_scale"]
        assert scale["rooms"] >= 16
        assert scale["sharded_speedup_vs_sync"] >= 2.0
        # Posting must be far cheaper than synchronous supervision.
        sync_ms = 1000.0 / report["workloads"]["supervision_throughput"]["messages_per_sec"]
        assert workloads["post_latency"]["ms_per_post"] < sync_ms / 5

    def test_parallel_drain_workload(self, report):
        drain = report["workloads"]["parallel_drain"]
        assert drain["rooms"] >= 16
        assert drain["workers"] >= 4
        assert drain["parallel_speedup_vs_sharded"] >= 1.5

    def test_process_drain_workload(self, report):
        # The multiprocess claim (docs/runtime.md): on a machine with
        # real cores to parallelise over, the child-process drain beats
        # the GIL-bound thread pool.  On a single-core host the IPC tax
        # has nothing to amortise against, so the speedup floor only
        # applies when the recorded machine had >= 2 cores.
        drain = report["workloads"]["process_drain"]
        assert drain["rooms"] >= 16
        assert drain["workers"] >= 2
        assert drain["cores"] >= 1
        assert drain["thread_messages_per_sec"] > 0
        assert drain["process_messages_per_sec"] > 0
        if drain["cores"] >= 2:
            assert drain["process_speedup_vs_thread"] >= 1.3

    def test_corpus_scale_workload(self, report):
        # The flat-retrieval claim (docs/corpus.md): stopword-heavy
        # suggestion search over 250k records stays within 3x of 10k.
        scale = report["workloads"]["corpus_scale"]
        assert scale["records_small"] >= 10_000
        assert scale["records_large"] >= 250_000
        assert scale["ms_per_query_small"] > 0
        assert scale["latency_ratio_large_vs_small"] <= 3.0

    def test_corpus_memory_workload(self, report):
        # The columnar-record claim (docs/corpus.md): at 250k synthetic
        # records, the columnar layout costs >= 3x fewer bytes/record
        # than object records, and the streaming suggestion search stays
        # within 1.2x of the tuple-decoding reference path's latency.
        memory = report["workloads"]["corpus_memory"]
        assert memory["records"] >= 250_000
        assert memory["bytes_per_record_columnar"] > 0
        assert memory["memory_ratio_objects_vs_columnar"] >= 3.0
        assert memory["latency_ratio_columnar_vs_reference"] <= 1.2

    def test_corpus_segment_tier_residency(self, report):
        # The disk-tier claim (docs/corpus.md): at 10^6 records fully
        # frozen into mmap-backed segments, a frozen record's heap
        # footprint is at most 0.2x its in-RAM columnar cost, total
        # resident bytes grow sublinearly in frozen records, and the
        # cross-tier suggestion search stays within 1.5x of the in-RAM
        # columnar search at a quarter the corpus.
        memory = report["workloads"]["corpus_memory"]
        assert memory["records_segmented"] >= 1_000_000
        assert memory["records_frozen"] == memory["records_segmented"]
        assert memory["segments"] >= 2
        assert memory["bytes_resident_per_frozen_record"] > 0
        assert memory["resident_ratio_vs_columnar"] <= 0.2
        assert memory["residency_growth_ratio"] < 1.0
        assert memory["latency_ratio_segmented_vs_columnar"] <= 1.5


    def test_resilience_workload(self, report):
        # The fault-tolerance claim (docs/resilience.md): retries and
        # guards must not gut throughput at realistic fault rates, and a
        # post under an open breaker (deliver + defer, no analysis) must
        # be cheaper than a fully supervised fault-free message.
        resilience = report["workloads"]["resilience"]
        assert resilience["messages"] >= 240
        assert resilience["fault_free_messages_per_sec"] > 0
        assert resilience["throughput_ratio_1pct"] >= 0.8
        assert resilience["throughput_ratio_5pct"] > 0
        assert (
            resilience["degraded_ms_per_post"]
            < resilience["fault_free_ms_per_message"]
        )

    def test_serving_workload(self, report):
        # The front-door claim (docs/serving.md): the HTTP serving layer
        # sustains concurrent clients (>= 4, the acceptance floor) with
        # every question drawing an observable QA reply, and the reply
        # percentiles are sane (p95 >= p50 > 0).
        serving = report["workloads"]["serving"]
        assert serving["clients"] >= 4
        assert serving["messages"] >= serving["clients"]
        assert serving["posts_per_sec"] > 0
        assert serving["replies_observed"] == serving["messages"]
        assert 0 < serving["reply_p50_ms"] <= serving["reply_p95_ms"]

    def test_recovery_workload(self, report):
        # The durability claim (docs/durability.md): snapshot-based
        # restart must be much cheaper than a full-replay rebuild, which
        # re-runs the supervision pipeline over every logged message.
        recovery = report["workloads"]["recovery"]
        assert recovery["messages"] >= 240
        assert recovery["events_replayed"] >= recovery["messages"]
        assert recovery["replay_messages_per_sec"] > 0
        assert recovery["wal_bytes"] > 0
        assert recovery["snapshot_bytes"] > 0
        replay_seconds = recovery["messages"] / recovery["replay_messages_per_sec"]
        assert recovery["snapshot_recover_seconds"] < replay_seconds / 2


class TestValidator:
    def test_rejects_wrong_schema_id(self, report):
        broken = {**report, "schema": "repro-bench/2"}
        with pytest.raises(ValueError, match="schema"):
            validate_report(broken)

    def test_rejects_missing_workload(self, report):
        broken = {**report, "workloads": {
            k: v for k, v in report["workloads"].items() if k != "cold_parse"
        }}
        with pytest.raises(ValueError, match="cold_parse"):
            validate_report(broken)

    def test_rejects_renamed_metric(self, report):
        workloads = dict(report["workloads"])
        workloads["warm_parse"] = {
            k: v for k, v in workloads["warm_parse"].items() if k != "cache_hit_rate"
        }
        with pytest.raises(ValueError, match="cache_hit_rate"):
            validate_report({**report, "workloads": workloads})

    def test_rejects_clobbered_baseline(self, report):
        with pytest.raises(ValueError, match="seed_baseline"):
            validate_report({**report, "seed_baseline": {"oops": True}})

    def test_baseline_not_required_to_carry_new_workloads(self, report):
        # The seed predates post_latency/multi_room_scale: the pinned
        # baseline without them must stay valid.
        assert "post_latency" not in report["seed_baseline"]
        validate_report(report)

    def test_covers_every_workload_we_ship(self, report):
        assert set(REQUIRED_WORKLOAD_METRICS) == set(report["workloads"])
