"""Metrics and the accuracy-study harness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.evaluation import (
    run_accuracy_study,
    score_binary,
    summarize_latencies,
)


class TestBinaryMetrics:
    def test_perfect(self):
        metrics = score_binary([(True, True), (False, False)])
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0
        assert metrics.accuracy == 1.0

    def test_all_missed(self):
        metrics = score_binary([(True, False), (True, False)])
        assert metrics.recall == 0.0
        assert metrics.f1 == 0.0

    def test_false_positives_hit_precision(self):
        metrics = score_binary([(False, True), (True, True)])
        assert metrics.precision == 0.5
        assert metrics.recall == 1.0

    def test_empty_sample(self):
        metrics = score_binary([])
        assert metrics.precision == 1.0
        assert metrics.accuracy == 1.0

    def test_row_renders(self):
        assert "F1=" in score_binary([(True, True)]).row()

    @given(st.lists(st.tuples(st.booleans(), st.booleans()), max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_counts_partition_sample(self, pairs):
        metrics = score_binary(pairs)
        total = (
            metrics.true_positives
            + metrics.false_positives
            + metrics.false_negatives
            + metrics.true_negatives
        )
        assert total == len(pairs)
        assert 0.0 <= metrics.precision <= 1.0
        assert 0.0 <= metrics.recall <= 1.0
        assert 0.0 <= metrics.f1 <= 1.0


class TestLatencySummary:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary.count == 0

    def test_single(self):
        summary = summarize_latencies([0.5])
        assert summary.p50 == 0.5
        assert summary.maximum == 0.5

    def test_percentile_ordering(self):
        summary = summarize_latencies([i / 100 for i in range(100)])
        assert summary.p50 <= summary.p90 <= summary.p99 <= summary.maximum

    @given(st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, samples):
        summary = summarize_latencies(samples)
        assert summary.count == len(samples)
        assert min(samples) <= summary.p50 <= max(samples)
        assert summary.maximum == max(samples)


class TestAccuracyStudy:
    @pytest.mark.slow
    def test_study_produces_rows(self):
        rows = run_accuracy_study(
            error_rates=[(0.2, 0.1)], seeds=[1], learners=3, rounds=4
        )
        (row,) = rows
        assert row.sentences == 12
        assert row.syntax.recall >= 0.5
        assert row.semantic.precision >= 0.5
        assert "F1=" in row.render()

    @pytest.mark.slow
    def test_zero_error_rate_yields_no_positives(self):
        rows = run_accuracy_study(
            error_rates=[(0.0, 0.0)], seeds=[1], learners=3, rounds=4
        )
        (row,) = rows
        assert row.syntax.true_positives == 0
        assert row.syntax.false_positives == 0
        assert row.semantic.false_positives == 0
