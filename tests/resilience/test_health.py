"""The health registry, structured shed events and the CLI surfaces.

Covers ``system.health()`` / :func:`build_health` (ok and each degraded
trigger), the structured backpressure shed events (satellite: shedding
must be attributable, not a bare counter), and the two CLI additions:
``python -m repro health`` and ``recover --json``.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.system import ELearningSystem, SystemConfig
from repro.resilience import RuntimeFaultPlan

ROOM = "ds-101"


def build_system(**kwargs) -> ELearningSystem:
    system = ELearningSystem.with_defaults(SystemConfig(**kwargs))
    system.open_room(ROOM, topic="stacks")
    system.join(ROOM, "alice")
    return system


class TestHealthReport:
    def test_fresh_system_is_ok(self):
        system = build_system()
        health = system.health()
        assert health.status == "ok"
        assert health.components["quarantine"] == {"items": 0}
        assert health.components["runtime"]["pending"] == 0
        assert health.components["runtime"]["deferred"] == 0
        assert health.counters["quarantined"] == 0

    def test_breakers_are_labelled_with_their_agents(self):
        health = build_system().health()
        assert health.components["breaker:parser"]["guards"] == "Learning_Angel"
        assert health.components["breaker:semantic"]["guards"] == "Semantic_Agent"
        assert health.components["breaker:qa"]["guards"] == "QA_System"
        for stage in ("parser", "semantic", "qa"):
            assert health.components[f"breaker:{stage}"]["state"] == "closed"

    def test_quarantined_item_degrades(self):
        system = build_system(
            runtime_faults=RuntimeFaultPlan(fail_at=1, fail_times=3)
        )
        system.say(ROOM, "alice", "The stack is full.")
        health = system.health()
        assert health.status == "degraded"
        assert health.components["quarantine"] == {"items": 1}
        assert health.counters["quarantined"] == 1
        assert health.counters["retries"] == 2
        assert health.counters["backoff_virtual"] > 0

    def test_open_breaker_and_deferred_ledger_degrade(self):
        system = build_system(runtime_faults=RuntimeFaultPlan(permanent=("parser",)))
        for text in ("The stack is full.", "The queue is empty.",
                     "We push an element onto the stack."):
            system.say(ROOM, "alice", text)
        health = system.health()
        assert health.status == "degraded"
        assert health.components["breaker:parser"]["state"] in ("open", "half_open")
        assert health.components["breaker:semantic"]["state"] == "closed"
        assert health.components["runtime"]["deferred"] == len(
            system.resilience.deferred
        )
        assert health.components["runtime"]["deferred"] > 0

    def test_durability_component_present_on_durable_systems(self, tmp_path):
        system = build_system(data_dir=str(tmp_path / "d"))
        system.say(ROOM, "alice", "The stack is full.")
        health = system.health()
        assert health.components["durability"]["events"] > 0
        assert health.components["durability"]["closed"] is False
        system.close()

    def test_summary_renders_every_component(self):
        system = build_system()
        text = system.health().summary()
        assert text.startswith("status: ok")
        for component in ("breaker:parser", "runtime:", "quarantine:"):
            assert component in text
        assert "counters:" in text

    def test_to_dict_round_trips_through_json(self):
        payload = json.dumps(build_system().health().to_dict())
        decoded = json.loads(payload)
        assert decoded["status"] == "ok"
        assert set(decoded) == {"status", "components", "counters"}


class TestStructuredShedEvents:
    """Satellite: shedding must say *what* was dropped, not just count."""

    def sheddy_system(self) -> ELearningSystem:
        system = ELearningSystem.with_defaults(
            SystemConfig(runtime_mode="sharded", shards=1, max_pending=1)
        )
        system.open_room(ROOM, topic="stacks")
        system.join(ROOM, "alice")
        for text in ("The stack is full.", "The queue is empty.",
                     "The tree is tall."):
            system.say(ROOM, "alice", text)
        return system

    def test_shed_events_identify_room_seq_and_reason(self):
        system = self.sheddy_system()
        events = system.runtime.shed_events()
        assert len(events) == system.supervision_shed > 0
        for event in events:
            assert event.room == ROOM
            assert event.reason == "backpressure"
        # oldest pending is shed first, so seqs are the earliest posts
        assert [event.seq for event in events] == sorted(e.seq for e in events)

    def test_shed_events_reach_the_health_registry(self):
        system = self.sheddy_system()
        health = system.health()
        assert health.status == "degraded"
        rows = health.components["runtime"]["shed_events"]
        assert rows == [event.to_dict() for event in system.runtime.shed_events()]
        assert {"shard", "room", "seq", "reason"} <= set(rows[0])


class TestHealthCommand:
    def durable_dir(self, tmp_path, faults=None) -> str:
        data_dir = str(tmp_path / "state")
        system = build_system(data_dir=data_dir, runtime_faults=faults)
        system.say(ROOM, "alice", "The stack is full.")
        system.say(ROOM, "alice", "What is a stack?")
        system.close()
        return data_dir

    def test_health_ok_exits_zero(self, tmp_path, capsys):
        data_dir = self.durable_dir(tmp_path)
        assert main(["health", data_dir]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert "recovery: clean" in out

    def test_health_degraded_exits_nonzero(self, tmp_path, capsys):
        faults = RuntimeFaultPlan(fail_at=1, fail_times=3)
        data_dir = self.durable_dir(tmp_path, faults=faults)
        assert main(["health", data_dir]) == 1
        assert "quarantine: items=1" in capsys.readouterr().out

    def test_health_json(self, tmp_path, capsys):
        data_dir = self.durable_dir(tmp_path)
        assert main(["health", "--json", data_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["health"]["status"] == "ok"
        assert payload["recovery"]["clean"] is True

    def test_health_leaves_the_directory_recoverable(self, tmp_path, capsys):
        data_dir = self.durable_dir(tmp_path)
        assert main(["health", data_dir]) == 0
        capsys.readouterr()
        assert main(["health", data_dir]) == 0  # inspect-only: no compaction damage


class TestRecoverJson:
    """Satellite: ``recover --json`` for scripting, exit code unchanged."""

    def test_json_report_and_state(self, tmp_path, capsys):
        data_dir = str(tmp_path / "state")
        system = build_system(data_dir=data_dir)
        system.say(ROOM, "alice", "What is a stack?")
        system.close()
        assert main(["recover", "--json", data_dir]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["clean"] is True
        assert payload["state"]["rooms"] == 1
        assert payload["state"]["questions"] == 1
        assert payload["state"]["quarantined"] == 0

    def test_exit_code_matches_plain_mode(self, tmp_path, capsys):
        data_dir = str(tmp_path / "state")
        system = build_system(data_dir=data_dir)
        system.say(ROOM, "alice", "The stack is full.")
        system.close()
        assert main(["recover", "--json", data_dir]) == 0
        capsys.readouterr()
        assert main(["recover", data_dir]) == 0
