"""Quarantine rows: round-trips, item rebuilds, store operations."""

from __future__ import annotations

from repro.chatroom.clock import SimulatedClock
from repro.chatroom.events import EventBus
from repro.chatroom.messages import MessageKind, Role
from repro.chatroom.runtime import SupervisionRuntime
from repro.chatroom.server import ChatServer
from repro.chatroom.shard import SupervisionItem
from repro.resilience import QuarantinedItem, QuarantineStore
from repro.resilience.quarantine import rebuild_item


def make_server() -> ChatServer:
    server = ChatServer(SimulatedClock(), EventBus(), SupervisionRuntime(mode="inline"))
    server.create_room("ds-101", "stacks")
    server.join("ds-101", "alice")
    return server


def make_row(**overrides) -> QuarantinedItem:
    fields = dict(
        seq=7,
        room="ds-101",
        sender="alice",
        text="stack the holds data.",
        timestamp=3.0,
        reply_to=None,
        sender_role="student",
        stage="parser",
        error="InjectedFault('boom')",
        attempts=3,
    )
    fields.update(overrides)
    return QuarantinedItem(**fields)


class TestRowRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        row = make_row()
        assert QuarantinedItem.from_dict(row.to_dict()) == row

    def test_from_dict_defaults_for_sparse_rows(self):
        row = QuarantinedItem.from_dict(
            {"seq": 1, "room": "r", "sender": "s", "text": "t", "ts": 0.0}
        )
        assert row.stage == "dispatch"
        assert row.attempts == 1
        assert row.sender_role is None

    def test_from_item_captures_message_and_role(self):
        server = make_server()
        message = server.post("ds-101", "alice", "What is a stack?")
        item = SupervisionItem(message, server.get_room("ds-101"), Role.STUDENT)
        row = QuarantinedItem.from_item(item, stage="qa", error="boom", attempts=2)
        assert row.seq == message.seq
        assert row.text == "What is a stack?"
        assert row.timestamp == message.timestamp
        assert row.sender_role == "student"
        assert (row.stage, row.error, row.attempts) == ("qa", "boom", 2)


class TestRebuildItem:
    def test_rebuild_is_field_exact(self):
        server = make_server()
        message = server.post("ds-101", "alice", "The stack is full.")
        item = SupervisionItem(message, server.get_room("ds-101"), Role.STUDENT)
        row = QuarantinedItem.from_item(item, stage="semantic")
        rebuilt = rebuild_item(server, row)
        assert rebuilt.message.seq == message.seq
        assert rebuilt.message.text == message.text
        assert rebuilt.message.timestamp == message.timestamp
        assert rebuilt.message.kind is MessageKind.USER
        assert rebuilt.room is server.get_room("ds-101")
        assert rebuilt.sender_role is Role.STUDENT

    def test_rebuild_without_role_snapshot(self):
        server = make_server()
        rebuilt = rebuild_item(server, make_row(sender_role=None))
        assert rebuilt.sender_role is None


class TestQuarantineStore:
    def test_add_get_remove(self):
        store = QuarantineStore()
        row = make_row()
        store.add(row)
        assert len(store) == 1
        assert 7 in store
        assert store.get(7) is row
        assert store.remove(7) is row
        assert store.remove(7) is None
        assert len(store) == 0

    def test_rows_are_seq_ordered(self):
        store = QuarantineStore()
        store.add(make_row(seq=9))
        store.add(make_row(seq=2))
        store.add(make_row(seq=5))
        assert [row.seq for row in store.rows()] == [2, 5, 9]

    def test_take_all_drains_in_order(self):
        store = QuarantineStore()
        store.add(make_row(seq=4))
        store.add(make_row(seq=1))
        taken = store.take_all()
        assert [row.seq for row in taken] == [1, 4]
        assert len(store) == 0

    def test_snapshot_restore_round_trip(self):
        store = QuarantineStore()
        store.add(make_row(seq=3))
        store.add(make_row(seq=8, stage="dispatch", error="x"))
        rows = store.snapshot()
        restored = QuarantineStore()
        restored.restore(rows)
        assert restored.snapshot() == rows
        # restore replaces, never merges
        restored.restore([])
        assert len(restored) == 0


class TestWorkerResultAbsorb:
    """Process-mode workers ship failure results across the boundary;
    ``absorb_worker_results`` must fold them in exactly like the
    thread-pool path would have: rows dead-letter (replacing any stale
    deferred entry), counters arrive as additive deltas, and journal
    writes buffer for the caller-thread flush."""

    def controller(self):
        from repro.resilience.controller import ResilienceController

        return ResilienceController()

    def test_rows_dead_letter_and_displace_deferred(self):
        controller = self.controller()
        controller.deferred[7] = object()  # stale parked entry, same seq
        controller.absorb_worker_results([make_row(seq=7), make_row(seq=9)])
        assert len(controller.quarantine) == 2
        assert controller.quarantine.get(7).text == "stack the holds data."
        assert 7 not in controller.deferred
        # No shipped counter delta: the parent counts the rows itself.
        assert controller.counters.quarantined == 2

    def test_shipped_counter_delta_is_absorbed_without_recounting(self):
        from repro.resilience.controller import ResilienceCounters

        controller = self.controller()
        delta = ResilienceCounters(
            retries=3, retry_successes=1, stage_failures=2, quarantined=1,
            backoff_virtual=0.25,
        )
        controller.absorb_worker_results([make_row(seq=7)], delta)
        # The child already counted its own quarantine; no double count.
        assert controller.counters.quarantined == 1
        assert controller.counters.retries == 3
        assert controller.counters.retry_successes == 1
        assert controller.counters.stage_failures == 2
        assert controller.counters.backoff_virtual == 0.25

    def test_counters_absorb_is_field_wise_addition(self):
        from dataclasses import fields

        from repro.resilience.controller import ResilienceCounters

        total = ResilienceCounters(retries=1, stall_virtual=0.5)
        total.absorb(ResilienceCounters(retries=2, quarantined=4, stall_virtual=0.5))
        assert total.retries == 3
        assert total.quarantined == 4
        assert total.stall_virtual == 1.0
        untouched = {
            f.name for f in fields(ResilienceCounters)
            if f.name not in ("retries", "quarantined", "stall_virtual")
        }
        assert all(getattr(total, name) == 0 for name in untouched)

    def test_rows_buffer_for_the_journal_flush(self):
        class JournalSpy:
            def __init__(self):
                self.rows = []

            def item_quarantined(self, row_dict):
                self.rows.append(row_dict)

        controller = self.controller()
        controller.journal = JournalSpy()
        controller.absorb_worker_results([make_row(seq=7)])
        assert controller.journal.rows == []  # buffered, not yet written
        controller.flush_journal()
        assert [row["seq"] for row in controller.journal.rows] == [7]
