"""RetryPolicy and BackoffClock: deterministic, virtual, validated."""

from __future__ import annotations

import pytest

from repro.resilience import BackoffClock, RetryPolicy


class TestRetryPolicyValidation:
    def test_defaults_are_valid(self):
        policy = RetryPolicy()
        assert policy.attempts == 3
        assert policy.base_delay > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_out_of_range_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestDelay:
    def test_delay_is_deterministic_per_key_and_attempt(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        assert a.delay(1, "42:0") == b.delay(1, "42:0")
        assert a.delay(2, "42:0") == b.delay(2, "42:0")

    def test_different_keys_draw_different_jitter(self):
        policy = RetryPolicy(seed=7)
        assert policy.delay(1, "1:0") != policy.delay(1, "2:0")

    def test_different_seeds_draw_different_jitter(self):
        assert RetryPolicy(seed=1).delay(1, "k") != RetryPolicy(seed=2).delay(1, "k")

    def test_exponential_growth_across_attempts(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        assert policy.delay(1, "k") == pytest.approx(0.1)
        assert policy.delay(2, "k") == pytest.approx(0.2)
        assert policy.delay(3, "k") == pytest.approx(0.4)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5, seed=3)
        for attempt in range(1, 20):
            delay = policy.delay(attempt, "k")
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_zero_jitter_skips_the_draw(self):
        policy = RetryPolicy(base_delay=0.25, jitter=0.0)
        assert policy.delay(1, "anything") == 0.25


class TestBackoffClock:
    def test_accumulates_without_sleeping(self):
        clock = BackoffClock()
        assert clock.elapsed == 0.0
        clock.wait(0.5)
        clock.wait(0.25)
        assert clock.elapsed == pytest.approx(0.75)
