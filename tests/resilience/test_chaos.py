"""Chaos harness: seeded faults at every pipeline crossing, zero loss.

The fault-tolerance analogue of the durability suite's crash sweep.
An unarmed :class:`RuntimeFaultPlan` first *counts* how many guarded
stage crossings (parser, semantic, qa, stores) a scripted workload
makes; the sweep then arms each crossing in turn and asserts:

* **transient** faults (one injected failure) are absorbed by a retry —
  the final state is **bit-identical** to the fault-free run's snapshot
  document, virtual backoff being the only trace;
* **poison** faults (the whole retry budget fails) dead-letter exactly
  one item; every message is still delivered, the processed/quarantined/
  deferred accounting is exact, and after the fault heals an operator
  ``redrive()`` converges the state to the fault-free run's;
* **permanent** stage outages trip the circuit breaker: delivery
  continues, analyses park on the deferred ledger, and the backfill on
  heal (probe → close → release) restores parity;
* seeded **rate** faults and injected **latency** obey the same
  invariants end to end, in the queued, sharded and parallel runtimes.

The tier-1 subset sweeps a spread of crossings; the full sweeps carry
``@pytest.mark.slow`` (satellite: chaos stays fast by default).
"""

from __future__ import annotations

import json

import pytest

from repro.chatroom import MessageKind
from repro.core.system import ELearningSystem, SystemConfig
from repro.durability.snapshot import build_snapshot
from repro.resilience import RuntimeFaultPlan

ROOM = "ds-101"
USERS = ("alice", "bob", "carol")

#: Every traffic kind the pipeline distinguishes: correct statements
#: (parser + semantic crossings), questions (qa crossings), a syntax
#: error, a semantic violation, a multi-sentence message and chitchat.
SCRIPT = (
    ("alice", "We push an element onto the stack."),
    ("bob", "What is a stack?"),
    ("carol", "The tree doesn't have pop method."),
    ("alice", "I push the data into a tree."),
    ("bob", "What is a queue?"),
    # Syntax error in a keyword domain (graph/vertex) no other message
    # touches: its corpus suggestion comes from the *seeded* records, so
    # it is the same whether the sentence is analysed at its turn or
    # redriven after later learner records landed (see TestPoisonFaults).
    ("carol", "graph the has vertex every the."),
    ("alice", "Thanks. What is Stack?"),
    ("bob", "The stack is full."),
)


def build_system(**kwargs) -> ELearningSystem:
    system = ELearningSystem.with_defaults(SystemConfig(**kwargs))
    system.open_room(ROOM, topic="data structures")
    for user in USERS:
        system.join(ROOM, user)
    return system


def run_script(system: ELearningSystem) -> ELearningSystem:
    for sender, text in SCRIPT:
        system.say(ROOM, sender, text)
    system.drain()
    return system


def bits_of(system: ELearningSystem) -> dict:
    """The full serialised state — the bit-identical comparison."""
    return build_snapshot(system, 0)


def canonical_state(system: ELearningSystem):
    """Order-independent final state for redrive/backfill parity.

    A redriven item commits *after* items that were posted later, so
    store insertion orders and agent-reply positions may legally differ
    from the fault-free run; everything else — delivered messages with
    their timestamps, the reply multiset, corpus rows, profiles, FAQ
    and the supervision counters — must converge exactly.
    """
    import dataclasses

    rooms = {}
    for name, room in system.server.rooms.items():
        users = sorted(
            (m.sender, m.text, m.timestamp)
            for m in room.transcript
            if m.kind is MessageKind.USER
        )
        replies = sorted(
            (m.sender, m.text)
            for m in room.transcript
            if m.kind is not MessageKind.USER
        )
        rooms[name] = (users, replies)
    corpus = sorted(
        json.dumps(
            {k: v for k, v in record.to_dict().items() if k != "record_id"},
            sort_keys=True,
        )
        for record in system.corpus.records()
    )
    profiles = sorted(
        (json.dumps(p.to_dict(), sort_keys=True) for p in system.profiles.all())
    )
    faq = sorted(
        json.dumps(pair.to_dict(), sort_keys=True) for pair in system.faq.pairs()
    )
    stats = dataclasses.asdict(system.pipeline.combined_stats())
    return (rooms, corpus, profiles, faq, stats)


def assert_delivery_intact(system: ELearningSystem) -> None:
    """Zero loss: every posted message is in the transcript, in order."""
    delivered = [
        (m.sender, m.text)
        for m in system.server.get_room(ROOM).transcript
        if m.kind is MessageKind.USER
    ]
    assert delivered == list(SCRIPT)


def assert_exact_accounting(system: ELearningSystem) -> None:
    """Processed + quarantined + deferred == posted, exactly."""
    resilience = system.resilience
    processed = system.stats.messages
    assert processed + len(resilience.quarantine) + len(resilience.deferred) == len(
        SCRIPT
    )


def heal_and_settle(system: ELearningSystem, plan: RuntimeFaultPlan) -> None:
    """Operator recovery: heal the fault, backfill, redrive the DLQ."""
    plan.heal()
    system.resilience.reset_breakers()
    system.drain()  # releases the deferred ledger
    system.redrive()  # re-runs dead-lettered items
    assert system.supervision_backlog == 0
    assert system.quarantined == 0


def spread(n: int, points: int = 6) -> list[int]:
    """Up to ``points`` crossings spread evenly over 1..n."""
    if n <= points:
        return list(range(1, n + 1))
    step = (n - 1) / (points - 1)
    return sorted({round(1 + i * step) for i in range(points)})


@pytest.fixture(scope="module")
def canonical():
    """The fault-free reference run (queued mode, the default)."""
    system = run_script(build_system())
    return {"bits": bits_of(system), "state": canonical_state(system)}


@pytest.fixture(scope="module")
def crossing_count(canonical):
    """Guarded crossings the workload makes, counted by an unarmed plan
    — which must not change semantics (same proof shape as the
    durability sweep's counting FaultClock)."""
    plan = RuntimeFaultPlan()
    system = run_script(build_system(runtime_faults=plan))
    assert bits_of(system) == canonical["bits"]
    assert system.resilience.counters.stage_failures == 0
    assert plan.count > len(SCRIPT)  # several crossings per message
    return plan.count


class TestTransientFaults:
    """One injected failure per crossing: a retry absorbs it in place."""

    def run_point(self, k: int, canonical) -> None:
        plan = RuntimeFaultPlan(fail_at=k, fail_times=1)
        system = run_script(build_system(runtime_faults=plan))
        assert plan.fired, f"crossing {k} never armed"
        counters = system.resilience.counters
        assert counters.retries >= 1
        assert counters.retry_successes >= 1
        assert counters.backoff_virtual > 0
        assert system.quarantined == 0
        assert not system.resilience.deferred
        assert bits_of(system) == canonical["bits"], f"crossing {k} diverged"

    def test_subset_of_crossings(self, canonical, crossing_count):
        for k in spread(crossing_count):
            self.run_point(k, canonical)

    @pytest.mark.slow
    def test_every_crossing(self, canonical, crossing_count):
        diverged = [
            k
            for k in range(1, crossing_count + 1)
            if not self._holds(k, canonical)
        ]
        assert diverged == []

    def _holds(self, k: int, canonical) -> bool:
        try:
            self.run_point(k, canonical)
        except AssertionError:
            return False
        return True


class TestPoisonFaults:
    """The whole retry budget fails: exactly one item dead-letters."""

    def run_point(self, k: int, canonical) -> None:
        plan = RuntimeFaultPlan(fail_at=k, fail_times=3)
        system = run_script(build_system(runtime_faults=plan))
        assert_delivery_intact(system)
        assert_exact_accounting(system)
        assert system.quarantined == 1
        row = system.resilience.quarantine.rows()[0]
        assert row.attempts == 3
        assert "InjectedFault" in row.error
        assert row.stage in ("parser", "semantic", "qa", "stores")
        heal_and_settle(system, plan)
        assert canonical_state(system) == canonical["state"], f"crossing {k}"
        assert system.stats.messages == len(SCRIPT)

    def test_subset_of_crossings(self, canonical, crossing_count):
        for k in spread(crossing_count):
            self.run_point(k, canonical)

    @pytest.mark.slow
    def test_every_crossing(self, canonical, crossing_count):
        for k in range(1, crossing_count + 1):
            self.run_point(k, canonical)


class TestPermanentOutage:
    """A hard-down stage trips its breaker; delivery never stops."""

    def test_defers_while_open_then_backfills_on_heal(self, canonical):
        # Cooldown far beyond the workload: the breaker stays open, so
        # every post after the trip parks on the deferred ledger.
        from repro.resilience import BreakerPolicy

        plan = RuntimeFaultPlan(permanent=("parser",))
        system = build_system(
            runtime_faults=plan,
            breaker=BreakerPolicy(cooldown=100),
        )
        run_script(system)
        resilience = system.resilience
        assert resilience.breakers["parser"].state == "open"
        assert_delivery_intact(system)  # degraded mode still delivers
        assert_exact_accounting(system)
        assert len(resilience.deferred) > 0
        assert system.quarantined > 0  # the items that tripped it
        assert system.health().status == "degraded"
        heal_and_settle(system, plan)
        assert canonical_state(system) == canonical["state"]
        assert resilience.counters.released >= 1
        assert resilience.counters.deferred_total >= 1

    def test_probe_closes_the_breaker_once_the_fault_clears(self, canonical):
        # Default policy: the fault heals mid-stream and the very next
        # half-open probe closes the breaker — the remaining messages
        # and the deferred backlog are supervised without any operator
        # action; only the dead-lettered items need a redrive.
        plan = RuntimeFaultPlan(permanent=("parser",))
        system = build_system(runtime_faults=plan)
        half = len(SCRIPT) // 2
        for sender, text in SCRIPT[:half]:
            system.say(ROOM, sender, text)
        breaker = system.resilience.breakers["parser"]
        assert breaker.opened_total >= 1
        plan.heal()
        for sender, text in SCRIPT[half:]:
            system.say(ROOM, sender, text)
        system.drain()
        assert breaker.state == "closed"
        assert not system.resilience.deferred  # backfilled by the probe cycle
        assert system.quarantined > 0
        system.redrive()
        assert canonical_state(system) == canonical["state"]


class TestSeededRateFaults:
    """Bernoulli faults at a few % of crossings, then heal to parity."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_heals_to_parity(self, canonical, seed):
        plan = RuntimeFaultPlan(rate=0.05, seed=seed)
        system = run_script(build_system(runtime_faults=plan))
        assert_delivery_intact(system)
        assert_exact_accounting(system)
        heal_and_settle(system, plan)
        assert canonical_state(system) == canonical["state"], f"seed {seed}"

    def test_same_seed_fires_the_same_crossings(self):
        fired = []
        for _ in range(2):
            plan = RuntimeFaultPlan(rate=0.2, seed=9)
            run_script(build_system(runtime_faults=plan))
            fired.append(list(plan.fired))
        assert fired[0] == fired[1]
        assert fired[0]  # 20% over dozens of crossings must fire


class TestInjectedLatency:
    """Stalls cost virtual seconds only — never a divergent state."""

    def test_stalls_accumulate_without_changing_state(self, canonical):
        plan = RuntimeFaultPlan(latency=0.05, latency_rate=0.5, seed=5)
        system = run_script(build_system(runtime_faults=plan))
        assert system.resilience.counters.stall_virtual > 0
        assert bits_of(system) == canonical["bits"]


class TestShardedRuntime:
    """The cooperative sharded drain under the same chaos invariants."""

    def sharded_kwargs(self, plan=None) -> dict:
        return dict(runtime_mode="sharded", shards=2, runtime_faults=plan)

    def test_fault_free_matches_queued_canonical(self, canonical):
        system = run_script(build_system(**self.sharded_kwargs()))
        assert canonical_state(system) == canonical["state"]

    def test_poison_point_redrives_to_parity(self, canonical):
        probe = RuntimeFaultPlan()
        run_script(build_system(**self.sharded_kwargs(probe)))
        for k in spread(probe.count, points=3):
            plan = RuntimeFaultPlan(fail_at=k, fail_times=3)
            system = run_script(build_system(**self.sharded_kwargs(plan)))
            assert_delivery_intact(system)
            assert_exact_accounting(system)
            assert system.quarantined == 1
            heal_and_settle(system, plan)
            assert canonical_state(system) == canonical["state"], f"crossing {k}"


class TestParallelRuntime:
    """Thread-pool workers: transient chaos must stay bit-identical."""

    def parallel_kwargs(self, plan=None) -> dict:
        return dict(runtime_mode="parallel", shards=2, runtime_faults=plan)

    @pytest.fixture(scope="class")
    def parallel_canonical(self):
        system = run_script(build_system(**self.parallel_kwargs()))
        bits = bits_of(system)
        system.close()
        return bits

    def test_transient_subset_is_bit_identical(self, parallel_canonical):
        # Crossing attribution is nondeterministic across pool threads,
        # which is the point: wherever the fault lands, the retry must
        # absorb it in place.
        probe = RuntimeFaultPlan()
        probe_system = run_script(build_system(**self.parallel_kwargs(probe)))
        probe_system.close()
        for k in spread(probe.count, points=3):
            plan = RuntimeFaultPlan(fail_at=k, fail_times=1)
            system = run_script(build_system(**self.parallel_kwargs(plan)))
            assert system.quarantined == 0
            assert bits_of(system) == parallel_canonical, f"crossing {k}"
            system.close()

    def test_latency_chaos_is_harmless(self, parallel_canonical):
        plan = RuntimeFaultPlan(latency=0.02, latency_rate=0.5, seed=7)
        system = run_script(build_system(**self.parallel_kwargs(plan)))
        assert bits_of(system) == parallel_canonical
        system.close()
