"""Circuit breaker state machine: trip, cooldown, probe, close."""

from __future__ import annotations

import pytest

from repro.resilience import BreakerPolicy, CircuitBreaker
from repro.resilience.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN


def tripped_breaker(policy=None) -> CircuitBreaker:
    breaker = CircuitBreaker(policy or BreakerPolicy(window=4, min_calls=2, cooldown=2))
    while breaker.state == STATE_CLOSED:
        breaker.record_failure()
    return breaker


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 0},
            {"min_calls": 0},
            {"cooldown": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
        ],
    )
    def test_out_of_range_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)

    def test_threshold_of_one_is_allowed(self):
        assert BreakerPolicy(failure_threshold=1.0).failure_threshold == 1.0


class TestTripping:
    def test_starts_closed(self):
        assert CircuitBreaker().state == STATE_CLOSED

    def test_min_calls_guards_against_early_trip(self):
        # One poison item's whole retry budget (3 failures) must not
        # open a default-policy breaker from a cold window.
        breaker = CircuitBreaker(BreakerPolicy())
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()  # 4/4 >= 0.5 with min_calls met
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 1

    def test_successes_dilute_the_failure_fraction(self):
        breaker = CircuitBreaker(BreakerPolicy(window=8, min_calls=4))
        for _ in range(6):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # 2/8 < 0.5

    def test_sliding_window_forgets_old_outcomes(self):
        breaker = CircuitBreaker(BreakerPolicy(window=4, min_calls=4))
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(4):  # pushes both failures out of the window
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # [T,T,T,F]: 1/4 < 0.5
        breaker.record_failure()
        assert breaker.state == STATE_OPEN  # [T,T,F,F]: 2/4 >= 0.5

    def test_trip_clears_window_and_counts_openings(self):
        breaker = tripped_breaker()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 1
        assert breaker.window_failures == 0


class TestCooldownAndProbe:
    def test_cooldown_ticks_to_half_open(self):
        breaker = tripped_breaker(BreakerPolicy(window=4, min_calls=2, cooldown=2))
        breaker.tick()
        assert breaker.state == STATE_OPEN
        breaker.tick()
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.probe_inflight is False

    def test_tick_is_a_noop_when_not_open(self):
        breaker = CircuitBreaker()
        breaker.tick()
        assert breaker.state == STATE_CLOSED

    def test_probe_success_closes_and_resets_window(self):
        breaker = tripped_breaker()
        breaker.tick()
        breaker.tick()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.window_failures == 0

    def test_probe_failure_reopens(self):
        breaker = tripped_breaker(BreakerPolicy(window=4, min_calls=2, cooldown=2))
        breaker.tick()
        breaker.tick()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.opened_total == 2

    def test_force_close_from_any_state(self):
        breaker = tripped_breaker()
        breaker.probe_inflight = True
        breaker.force_close()
        assert breaker.state == STATE_CLOSED
        assert breaker.probe_inflight is False


class TestDescribe:
    def test_health_row_shape(self):
        breaker = CircuitBreaker(BreakerPolicy(window=4, min_calls=4))
        breaker.record_success()
        breaker.record_failure()
        assert breaker.describe() == {
            "state": STATE_CLOSED,
            "opened_total": 0,
            "window_failures": 1,
            "window_calls": 2,
        }
