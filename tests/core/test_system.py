"""Integration tests: the assembled Figure-3 system."""

from __future__ import annotations

import pytest

from repro import ELearningSystem, SystemConfig
from repro.chatroom import Role, SupervisionPolicy
from repro.corpus.records import Correctness
from repro.ontology.domains.data_structures import STACK_DESCRIPTION


@pytest.fixture()
def system():
    sys_ = ELearningSystem.with_defaults()
    sys_.open_room("r1", topic="stacks")
    sys_.join("r1", "alice")
    sys_.join("r1", "bob")
    return sys_


class TestQuestionFlow:
    def test_what_is_stack_gets_paper_definition(self, system):
        message = system.say("r1", "alice", "What is Stack?")
        replies = system.agent_replies_to(message)
        assert len(replies) == 1
        assert replies[0].sender == "QA_System"
        assert replies[0].text == STACK_DESCRIPTION

    def test_question_recorded_as_question(self, system):
        system.say("r1", "alice", "What is Stack?")
        record = system.corpus.records()[-1]
        assert record.verdict == Correctness.QUESTION

    def test_unanswerable_question_apology(self, system):
        message = system.say("r1", "alice", "How is the weather?")
        replies = system.agent_replies_to(message)
        assert len(replies) == 1
        assert "could not find" in replies[0].text

    def test_faq_accumulates_across_users(self, system):
        system.say("r1", "alice", "What is Stack?")
        system.say("r1", "bob", "What is a stack?")
        assert system.stats.faq_hits == 1
        assert system.faq_top(1)[0].count == 2


class TestSupervisionFlow:
    def test_semantic_violation_intervention(self, system):
        message = system.say("r1", "bob", "I push the data into a tree.")
        replies = system.agent_replies_to(message)
        assert any(r.sender == "Semantic_Agent" for r in replies)
        record = system.corpus.records()[-1]
        assert record.verdict == Correctness.SEMANTIC_ERROR
        assert record.semantic_issues

    def test_paper_negation_example_passes_silently(self, system):
        message = system.say("r1", "alice", "The tree doesn't have pop method.")
        assert system.agent_replies_to(message) == []
        record = system.corpus.records()[-1]
        assert record.verdict == Correctness.CORRECT

    def test_syntax_error_intervention(self, system):
        message = system.say("r1", "bob", "stack the holds data quickly the.")
        replies = system.agent_replies_to(message)
        assert any(r.sender == "Learning_Angel" for r in replies)
        assert system.corpus.records()[-1].verdict == Correctness.SYNTAX_ERROR

    def test_clean_statement_quiet(self, system):
        message = system.say("r1", "alice", "We push an element onto the stack.")
        assert system.agent_replies_to(message) == []

    def test_multi_sentence_message(self, system):
        message = system.say("r1", "alice", "Thanks. What is Stack?")
        replies = system.agent_replies_to(message)
        assert len(replies) == 1
        assert system.stats.sentences >= 2

    def test_profiles_updated(self, system):
        system.say("r1", "bob", "I push the data into a tree.")
        system.say("r1", "bob", "What is Stack?")
        profile = system.profiles.get("bob")
        assert profile.messages == 2
        assert profile.semantic_errors == 1
        assert profile.questions == 1
        assert "tree" in profile.topic_counts

    def test_stats_counters(self, system):
        system.say("r1", "alice", "What is Stack?")
        system.say("r1", "bob", "I push the data into a tree.")
        stats = system.stats
        assert stats.messages == 2
        assert stats.questions == 1
        assert stats.questions_answered == 1
        assert stats.semantic_violations == 1
        assert stats.agent_replies >= 2


class TestPolicies:
    def test_silent_policy(self):
        config = SystemConfig(
            policy=SupervisionPolicy(
                reply_to_errors=False,
                reply_to_questions=False,
                reply_when_unanswered=False,
            )
        )
        sys_ = ELearningSystem.with_defaults(config)
        sys_.open_room("r", topic="t")
        sys_.join("r", "u")
        message = sys_.say("r", "u", "I push the data into a tree.")
        assert sys_.agent_replies_to(message) == []
        # Supervision still recorded even though no reply was posted.
        assert sys_.corpus.records()[-1].verdict == Correctness.SEMANTIC_ERROR

    def test_reply_cap(self):
        config = SystemConfig(policy=SupervisionPolicy(max_replies_per_message=1))
        sys_ = ELearningSystem.with_defaults(config)
        sys_.open_room("r", topic="t")
        sys_.join("r", "u")
        message = sys_.say("r", "u", "I push the data into a tree.")
        assert len(sys_.agent_replies_to(message)) == 1

    def test_unseeded_corpus(self):
        sys_ = ELearningSystem.with_defaults(SystemConfig(seed_corpus=False))
        assert len(sys_.corpus) == 0


class TestReports:
    def test_corpus_report(self, system):
        system.say("r1", "alice", "What is Stack?")
        system.say("r1", "bob", "I push the data into a tree.")
        report = system.corpus_report()
        verdicts = dict(report.verdict_counts)
        assert verdicts["question"] == 1
        assert verdicts["semantic-error"] == 1

    def test_clock_advances_per_message(self, system):
        t0 = system.clock.now()
        system.say("r1", "alice", "Hello.")
        assert system.clock.now() == t0 + 1.0

    def test_teacher_role(self, system):
        system.join("r1", "prof", Role.TEACHER)
        assert system.server.role_of("r1", "prof") == Role.TEACHER
