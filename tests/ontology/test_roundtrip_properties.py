"""Property-based serialisation round-trips over random ontologies.

The XML and DDL/DML pipelines must be exact inverses for *any* knowledge
body an author could build, not just the shipped domain: hypothesis
composes random ontologies (names with spaces and quotes, aliases,
symbols, algorithms, arbitrary relation wiring) and both pipelines must
reproduce them exactly.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.ontology import (
    Ontology,
    RelationKind,
    from_xml,
    interpret_script,
    render_script,
    to_xml,
    translate,
)
from repro.ontology.builder import OntologyBuilder

_NAME_ALPHABET = "abcdefghijklmnopqrstuvwxyz"
_TEXT_ALPHABET = _NAME_ALPHABET + " '\"-(),."

_names = st.lists(
    st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=8),
    min_size=2,
    max_size=8,
    unique=True,
)
_texts = st.text(alphabet=_TEXT_ALPHABET, min_size=0, max_size=60)


@st.composite
def ontologies(draw) -> Ontology:
    builder = OntologyBuilder(domain=draw(st.sampled_from(["Alpha", "Beta Domain"])))
    concept_names = draw(_names)
    operation_names = [name + "op" for name in draw(_names)]
    for name in concept_names:
        builder.concept(
            name,
            description=draw(_texts),
            symbols={draw(st.sampled_from(["top", "front", "core"])): draw(_texts)}
            if draw(st.booleans())
            else None,
        )
    for name in operation_names:
        builder.operation(name, description=draw(_texts))
    # Acyclic is-a chain over concepts (ordered by construction).
    for child, parent in zip(concept_names[1:], concept_names):
        if draw(st.booleans()):
            builder.is_a(child, parent)
    for concept in concept_names:
        for operation in operation_names:
            if draw(st.integers(0, 3)) == 0:
                builder.supports(concept, operation)
    if draw(st.booleans()):
        builder.attach_algorithm(
            concept_names[0], "algo", draw(st.sampled_from(["c", "text"])), draw(_texts)
        )
    extra_kind = draw(
        st.sampled_from([RelationKind.USES, RelationKind.RELATED_TO, RelationKind.PART_OF])
    )
    builder.ontology.add_relation(concept_names[0], extra_kind, concept_names[-1])
    return builder.build()


def _assert_equivalent(a: Ontology, b: Ontology) -> None:
    assert len(a) == len(b)
    assert a.domain == b.domain
    for item in a.items():
        other = b.get(item.item_id)
        assert other.name == item.name
        assert other.kind == item.kind
        assert other.aliases == item.aliases
        assert other.definition.description == item.definition.description
        assert other.definition.symbols == item.definition.symbols
        assert [(x.name, x.type, x.body) for x in other.algorithms] == [
            (x.name, x.type, x.body) for x in item.algorithms
        ]
    assert set(a.relations()) == set(b.relations())


@given(ontologies())
@settings(max_examples=60, deadline=None)
def test_xml_round_trip(ontology):
    _assert_equivalent(ontology, from_xml(to_xml(ontology)))


@given(ontologies())
@settings(max_examples=60, deadline=None)
def test_ddl_round_trip(ontology):
    script = render_script(translate(ontology))
    _assert_equivalent(ontology, interpret_script(script, ontology.domain))


@given(ontologies())
@settings(max_examples=30, deadline=None)
def test_double_round_trip_is_stable(ontology):
    once = from_xml(to_xml(ontology))
    twice = from_xml(to_xml(once))
    _assert_equivalent(once, twice)


@given(ontologies())
@settings(max_examples=30, deadline=None)
def test_pipelines_commute(ontology):
    """XML-then-DDL equals DDL-then-XML."""
    via_xml = from_xml(to_xml(ontology))
    via_ddl = interpret_script(render_script(translate(ontology)), ontology.domain)
    _assert_equivalent(via_xml, via_ddl)
