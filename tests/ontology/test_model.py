"""Ontology object model: items, relations, inheritance."""

from __future__ import annotations

import pytest

from repro.ontology import (
    Item,
    ItemKind,
    Ontology,
    OntologyError,
    RelationKind,
)
from repro.ontology.builder import OntologyBuilder


@pytest.fixture()
def small_ontology() -> Ontology:
    b = OntologyBuilder("test")
    b.concept("container", item_id=1)
    b.concept("stack", item_id=2)
    b.concept("tower", item_id=3)
    b.operation("push", item_id=30)
    b.operation("measure", item_id=31)
    b.property("tall", item_id=60)
    b.is_a("stack", "container")
    b.is_a("tower", "container")
    b.supports("container", "measure")
    b.supports("stack", "push")
    b.has_property("tower", "tall")
    return b.build()


class TestItems:
    def test_lookup_by_id_and_name(self, small_ontology):
        assert small_ontology.get(2).name == "stack"
        assert small_ontology.find("stack").item_id == 2
        assert small_ontology.find("STACK").item_id == 2

    def test_missing_lookups(self, small_ontology):
        assert small_ontology.find("nope") is None
        with pytest.raises(OntologyError):
            small_ontology.get(999)
        with pytest.raises(OntologyError):
            small_ontology.resolve("nope")

    def test_duplicate_id_rejected(self, small_ontology):
        with pytest.raises(OntologyError):
            small_ontology.add_item(Item(item_id=2, name="other"))

    def test_duplicate_name_rejected(self, small_ontology):
        with pytest.raises(OntologyError):
            small_ontology.add_item(Item(item_id=99, name="stack"))

    def test_aliases_resolve(self):
        b = OntologyBuilder()
        b.concept("binary search tree", item_id=1, aliases=("bst",))
        ontology = b.build()
        assert ontology.find("bst").item_id == 1
        assert "bst" in ontology.term_index()

    def test_items_of_kind(self, small_ontology):
        concepts = small_ontology.items_of_kind(ItemKind.CONCEPT)
        assert {item.name for item in concepts} == {"container", "stack", "tower"}

    def test_items_sorted_by_id(self, small_ontology):
        ids = [item.item_id for item in small_ontology.items()]
        assert ids == sorted(ids)

    def test_contains(self, small_ontology):
        assert 2 in small_ontology
        assert "stack" in small_ontology
        assert 12345 not in small_ontology


class TestRelations:
    def test_relations_from_and_to(self, small_ontology):
        from_stack = small_ontology.relations_from("stack")
        assert len(from_stack) == 2  # is-a container, has-operation push
        to_container = small_ontology.relations_to("container")
        assert len(to_container) == 2

    def test_relation_kind_filter(self, small_ontology):
        only_isa = small_ontology.relations_from("stack", RelationKind.IS_A)
        assert len(only_isa) == 1

    def test_duplicate_relations_collapse(self, small_ontology):
        before = len(small_ontology.relations())
        small_ontology.add_relation("stack", RelationKind.IS_A, "container")
        assert len(small_ontology.relations()) == before

    def test_relation_requires_existing_items(self, small_ontology):
        with pytest.raises(OntologyError):
            small_ontology.add_relation("stack", RelationKind.USES, "ghost")

    def test_parents_and_ancestors(self, small_ontology):
        assert [p.name for p in small_ontology.parents("stack")] == ["container"]
        assert [a.name for a in small_ontology.ancestors("stack")] == ["container"]


class TestInheritance:
    def test_direct_operation(self, small_ontology):
        assert small_ontology.has_operation("stack", "push")

    def test_inherited_operation(self, small_ontology):
        assert small_ontology.has_operation("stack", "measure")

    def test_inheritance_can_be_disabled(self, small_ontology):
        assert not small_ontology.has_operation("stack", "measure", inherit=False)

    def test_not_supported(self, small_ontology):
        assert not small_ontology.has_operation("tower", "push")

    def test_concepts_with_operation(self, small_ontology):
        names = {c.name for c in small_ontology.concepts_with_operation("measure")}
        assert names == {"container", "stack", "tower"}

    def test_properties_inherited(self):
        b = OntologyBuilder()
        b.concept("tree", item_id=1)
        b.concept("binary tree", item_id=2)
        b.property("hierarchical", item_id=60)
        b.is_a("binary tree", "tree")
        b.has_property("tree", "hierarchical")
        ontology = b.build()
        names = {p.name for p in ontology.properties_of("binary tree")}
        assert names == {"hierarchical"}


class TestValidation:
    def test_clean_ontology_validates(self, small_ontology):
        assert small_ontology.validate() == []

    def test_isa_cycle_detected(self):
        b = OntologyBuilder()
        b.concept("a", item_id=1)
        b.concept("b", item_id=2)
        b.is_a("a", "b")
        b.is_a("b", "a")
        with pytest.raises(OntologyError):
            b.build()

    def test_build_without_validation(self):
        b = OntologyBuilder()
        b.concept("a", item_id=1)
        b.concept("b", item_id=2)
        b.is_a("a", "b")
        b.is_a("b", "a")
        ontology = b.build(validate=False)
        assert ontology.validate() != []


class TestBuilderAutoIds:
    def test_kind_based_id_ranges(self):
        b = OntologyBuilder()
        concept = b.concept("x")
        operation = b.operation("y")
        prop = b.property("z")
        algorithm = b.algorithm_item("w")
        assert concept.item_id == 1
        assert operation.item_id == 30
        assert prop.item_id == 60
        assert algorithm.item_id == 80

    def test_explicit_ids_respected_and_skipped(self):
        b = OntologyBuilder()
        b.concept("x", item_id=1)
        auto = b.concept("y")
        assert auto.item_id == 2
