"""Ontology graph distances, with networkx as a property-test oracle."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.ontology import INFINITY, OntologyGraph, SemanticDistanceEvaluator
from repro.ontology.builder import OntologyBuilder
from repro.ontology.domains import default_ontology


@pytest.fixture(scope="module")
def ontology():
    return default_ontology()


@pytest.fixture(scope="module")
def graph(ontology):
    return OntologyGraph(ontology)


class TestPaperDistances:
    """Section 4.3: tree (4) and pop (33) 'is not related'."""

    def test_paper_ids(self, ontology):
        assert ontology.find("stack").item_id == 3
        assert ontology.find("tree").item_id == 4
        assert ontology.find("push").item_id == 32
        assert ontology.find("pop").item_id == 33

    def test_stack_push_adjacent(self, graph, ontology):
        assert graph.distance(3, 32) == 1.0

    def test_tree_pop_far(self, graph):
        assert graph.distance(4, 33) > 2.0

    def test_verdicts(self, ontology):
        evaluator = SemanticDistanceEvaluator(ontology)
        assert evaluator.evaluate_pair("stack", "push").related
        assert not evaluator.evaluate_pair("tree", "pop").related


class TestGraphBasics:
    def test_distance_to_self(self, graph):
        assert graph.distance(3, 3) == 0.0

    def test_symmetry(self, graph, ontology):
        items = [item.item_id for item in ontology.items()][:20]
        for a in items[:5]:
            for b in items[5:10]:
                assert graph.distance(a, b) == graph.distance(b, a)

    def test_unreachable_is_infinite(self):
        b = OntologyBuilder()
        b.concept("a", item_id=1)
        b.concept("b", item_id=2)
        graph = OntologyGraph(b.build())
        assert graph.distance(1, 2) == INFINITY

    def test_shortest_path_nodes(self, graph, ontology):
        result = graph.shortest_path(
            ontology.find("avl tree").item_id, ontology.find("tree").item_id
        )
        assert result.reachable
        assert result.nodes[0] == ontology.find("avl tree").item_id
        assert result.nodes[-1] == ontology.find("tree").item_id
        assert result.distance == len(result.nodes) - 1  # all is-a hops, weight 1

    def test_distances_from_contains_source(self, graph):
        distances = graph.distances_from(3)
        assert distances[3] == 0.0
        assert len(distances) > 10

    def test_whole_domain_is_connected(self, graph, ontology):
        components = graph.connected_components()
        assert len(components) == 1

    def test_unknown_node(self, graph):
        assert graph.distance(99999, 3) == INFINITY


def _as_networkx(ontology) -> nx.Graph:
    g = nx.Graph()
    for item in ontology.items():
        g.add_node(item.item_id)
    for relation in ontology.relations():
        weight = relation.kind.weight
        if g.has_edge(relation.source, relation.target):
            weight = min(weight, g[relation.source][relation.target]["weight"])
        g.add_edge(relation.source, relation.target, weight=weight)
    return g


class TestAgainstNetworkxOracle:
    """Property tests: our Dijkstra agrees with networkx everywhere."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_random_pairs_match_oracle(self, seed):
        import random

        ontology = default_ontology()
        graph = OntologyGraph(ontology)
        oracle = _as_networkx(ontology)
        rng = random.Random(seed)
        ids = [item.item_id for item in ontology.items()]
        a, b = rng.choice(ids), rng.choice(ids)
        ours = graph.distance(a, b)
        try:
            theirs = nx.dijkstra_path_length(oracle, a, b)
        except nx.NetworkXNoPath:
            theirs = INFINITY
        assert ours == pytest.approx(theirs)

    def test_all_pairs_from_stack_match_oracle(self):
        ontology = default_ontology()
        graph = OntologyGraph(ontology)
        oracle = _as_networkx(ontology)
        source = ontology.find("stack").item_id
        ours = graph.distances_from(source)
        theirs = nx.single_source_dijkstra_path_length(oracle, source)
        assert set(ours) == set(theirs)
        for node, distance in theirs.items():
            assert ours[node] == pytest.approx(distance)


class TestSuggestions:
    def test_concepts_supporting_pop(self, ontology):
        evaluator = SemanticDistanceEvaluator(ontology)
        names = [item.name for item in evaluator.concepts_supporting("pop")]
        assert "stack" in names

    def test_near_anchor_changes_order(self, ontology):
        evaluator = SemanticDistanceEvaluator(ontology)
        ranked = evaluator.concepts_supporting("insert", near="avl tree")
        # The nearest insert-supporting concept to an AVL tree should be a
        # tree-family structure, not the hash table.
        assert ranked[0].name in {"binary search tree", "tree", "avl tree"}

    def test_operations_available_sorted(self, ontology):
        evaluator = SemanticDistanceEvaluator(ontology)
        names = [item.name for item in evaluator.operations_available("stack")]
        assert names == sorted(names)
        assert "push" in names and "pop" in names

    def test_nearest_items_excludes_self(self, ontology):
        evaluator = SemanticDistanceEvaluator(ontology)
        nearest = evaluator.nearest_items("stack", limit=5)
        assert len(nearest) == 5
        assert all(item.name != "stack" for item, _distance in nearest)
        distances = [distance for _item, distance in nearest]
        assert distances == sorted(distances)
