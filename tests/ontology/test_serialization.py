"""XML and DDL/DML round-trips (paper Figures 3 and 5, section 4.4)."""

from __future__ import annotations

import pytest

from repro.ontology import (
    Interpreter,
    OntologyError,
    RelationKind,
    from_xml,
    interpret_script,
    parse_script,
    render_script,
    to_xml,
    translate,
)
from repro.ontology.ddl import DDLError, Statement
from repro.ontology.domains import default_ontology
from repro.ontology.domains.data_structures import STACK_DESCRIPTION, STACK_TOP_SYMBOL


def _equivalent(a, b) -> None:
    assert len(a) == len(b)
    assert a.domain == b.domain
    for item in a.items():
        other = b.get(item.item_id)
        assert other.name == item.name
        assert other.kind == item.kind
        assert other.aliases == item.aliases
        assert other.definition.description == item.definition.description
        assert other.definition.symbols == item.definition.symbols
        assert [(x.name, x.type, x.body) for x in other.algorithms] == [
            (x.name, x.type, x.body) for x in item.algorithms
        ]
    assert set(a.relations()) == set(b.relations())


class TestXmlRoundTrip:
    def test_full_domain_round_trips(self):
        ontology = default_ontology()
        _equivalent(ontology, from_xml(to_xml(ontology)))

    def test_paper_fragment_fields(self):
        xml = to_xml(default_ontology())
        # Fig. 5 / section 4.4 artefacts.
        assert 'id="3" name="stack"' in xml
        assert "<Description>A stack is a Last In, First Out (LIFO)" in xml
        assert '<Symbol name="top">' in xml
        assert 'id="32" name="push"' in xml
        assert 'id="33" name="pop"' in xml
        assert 'type="c"' in xml

    def test_paper_literal_xml_parses(self):
        # The XML block quoted in section 4.4, wrapped in a knowledge body.
        literal = f"""
        <KnowledgeBody domain="Data Structure">
          <KeyItem id="3" name="stack">
            <Definition>
              <Description>{STACK_DESCRIPTION}</Description>
              <Symbol name="top">{STACK_TOP_SYMBOL}</Symbol>
            </Definition>
          </KeyItem>
        </KnowledgeBody>
        """
        ontology = from_xml(literal)
        stack = ontology.find("stack")
        assert stack.item_id == 3
        assert stack.definition.description == STACK_DESCRIPTION
        assert stack.definition.symbols["top"] == STACK_TOP_SYMBOL

    def test_rejects_bad_xml(self):
        with pytest.raises(OntologyError):
            from_xml("<KnowledgeBody><broken")
        with pytest.raises(OntologyError):
            from_xml("<NotAKnowledgeBody/>")
        with pytest.raises(OntologyError):
            from_xml('<KnowledgeBody><KeyItem name="no-id"/></KnowledgeBody>')

    def test_shared_operations_not_duplicated(self):
        ontology = default_ontology()
        round_tripped = from_xml(to_xml(ontology))
        # "insert" is owned by many concepts; it must exist exactly once.
        assert round_tripped.find("insert").item_id == 30


class TestDDLRoundTrip:
    def test_full_domain_round_trips(self):
        ontology = default_ontology()
        script = render_script(translate(ontology))
        _equivalent(ontology, interpret_script(script))

    def test_script_shape(self):
        script = render_script(translate(default_ontology()))
        assert "CREATE CONCEPT 'stack' ID 3" in script
        assert "CREATE OPERATION 'push' ID 32" in script
        assert "INSERT RELATION 'stack' 'is-a' 'list';" in script
        assert "INSERT SYMBOL 'top' INTO 'stack' VALUE" in script
        assert "INSERT ALGORITHM 'push' INTO 'stack' TYPE 'c' VALUE" in script

    def test_statement_render_parse_identity(self):
        statements = translate(default_ontology())
        for statement in statements:
            (reparsed,) = parse_script(statement.render())
            assert reparsed == statement

    def test_quoting_of_embedded_quotes(self):
        statement = Statement("INSERT", "DESCRIPTION", ("x", "it's a test"))
        (reparsed,) = parse_script("CREATE CONCEPT 'x' ID 1;" )
        assert reparsed.kind == "CONCEPT"
        script = "CREATE CONCEPT 'x' ID 1; " + statement.render()
        ontology = interpret_script(script)
        assert ontology.find("x").definition.description == "it's a test"


class TestDDLErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "CREATE NONSENSE 'x' ID 1;",
            "CREATE CONCEPT missing-quotes ID 1;",
            "INSERT RELATION 'a' 'is-a';",
            "INSERT DESCRIPTION 'x' 'y';",
            "FROB CONCEPT 'x';",
            "CREATE CONCEPT 'x' ID 1",  # missing semicolon
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(DDLError):
            parse_script(bad)

    def test_unknown_relation_kind(self):
        script = (
            "CREATE CONCEPT 'a' ID 1; CREATE CONCEPT 'b' ID 2; "
            "INSERT RELATION 'a' 'frobnicates' 'b';"
        )
        with pytest.raises(DDLError):
            interpret_script(script)

    def test_interpreter_is_incremental(self):
        interpreter = Interpreter()
        for statement in parse_script("CREATE CONCEPT 'a' ID 1;"):
            interpreter.execute(statement)
        ontology = interpreter.builder.build()
        assert "a" in ontology


class TestFigure3Pipeline:
    """Definition -> translation -> interpretation -> corpus seeding."""

    def test_end_to_end(self):
        from repro.corpus import CorporaGenerator, LearnerCorpus
        from repro.ontology.builder import OntologyBuilder

        b = OntologyBuilder("mini")
        b.concept("widget", item_id=1, description="A widget is a thing.")
        b.operation("frob", item_id=30)
        b.supports("widget", "frob")
        source = b.build()

        script = render_script(translate(source))      # Translation
        ontology = interpret_script(script, "mini")    # Interpreter
        corpus = LearnerCorpus()
        CorporaGenerator(ontology).populate(corpus)    # Corpora Generator
        texts = [record.text for record in corpus.records()]
        assert "A widget is a thing." in texts
        assert "The widget supports the frob operation." in texts
