"""Crash-at-any-boundary fault injection.

The core robustness proof: for *every* write/snapshot boundary the
durability layer crosses during a scripted workload, kill the process
there, recover the data directory, finish the remaining inputs on the
recovered system, and assert the final ``snapshot()`` state of every
store equals the canonical uncrashed run — transcripts, clock, sequence
numbers and supervision counters included.

Two kill modes: injected ``SimulatedCrash`` (fast — the whole boundary
sweep runs in-process) and a real ``os._exit`` subprocess for a sample
of boundaries (proving the contract holds under genuine process death,
not just unwinding).
"""

from __future__ import annotations

import dataclasses
import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro.corpus.store as corpus_store
from repro.core.system import ELearningSystem, SystemConfig
from repro.durability.faults import NO_FAULTS, FaultClock, SimulatedCrash

_CHILD = Path(__file__).with_name("_crash_child.py")
_spec = importlib.util.spec_from_file_location("_crash_child", _CHILD)
_crash_child = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_crash_child)
OPS, apply_op = _crash_child.OPS, _crash_child.apply

CONFIG_KWARGS = dict(snapshot_every=5, fsync="always")


def make_config(data_dir, fault_clock=None):
    return SystemConfig(
        data_dir=str(data_dir), fault_clock=fault_clock, **CONFIG_KWARGS
    )


def full_state(system):
    return (
        system.corpus.snapshot(),
        system.profiles.snapshot(),
        system.faq.snapshot(),
        {name: list(room.transcript) for name, room in system.server.rooms.items()},
        system.clock.now(),
        system.server.total_messages(),
        dataclasses.asdict(system.pipeline.combined_stats()),
    )


@pytest.fixture(scope="module")
def canonical(tmp_path_factory):
    """The uncrashed reference: same durable code path, no faults."""
    directory = tmp_path_factory.mktemp("canonical")
    system = ELearningSystem.with_defaults(make_config(directory / "d"))
    for op in OPS:
        apply_op(system, op)
    state = full_state(system)
    system.close()
    return state


@pytest.fixture(scope="module")
def boundary_count(tmp_path_factory, canonical):
    """How many fault boundaries the workload + close() cross, measured
    by an unarmed counting clock — which must not change semantics."""
    directory = tmp_path_factory.mktemp("counting")
    clock = FaultClock()  # unarmed: counts, never fires
    system = ELearningSystem.with_defaults(make_config(directory / "d", clock))
    for op in OPS:
        apply_op(system, op)
    assert full_state(system) == canonical
    system.close()
    assert clock.count > len(OPS)  # several boundaries per input
    return clock.count


def recover_and_finish(data_dir):
    """Recover a crashed directory and apply the not-yet-durable inputs.

    The log's event count *is* the durable input prefix (each workload
    op journals exactly one event, agent replies are never journalled),
    so ``OPS[report.events_total:]`` are the inputs the crash lost.
    """
    recovered, report = ELearningSystem.recover(
        str(data_dir), SystemConfig(**CONFIG_KWARGS)
    )
    assert report.clean, report.summary()
    resume = report.events_total
    assert 0 <= resume <= len(OPS)
    for op in OPS[resume:]:
        apply_op(recovered, op)
    return recovered, report


def test_crash_at_every_boundary_recovers_to_canonical(
    tmp_path, canonical, boundary_count
):
    """The tentpole sweep: every boundary, injected-exception mode."""
    failures = []
    for crash_at in range(1, boundary_count + 1):
        directory = tmp_path / f"crash-{crash_at}"
        clock = FaultClock(crash_at=crash_at)
        try:
            system = ELearningSystem.with_defaults(make_config(directory, clock))
            for op in OPS:
                apply_op(system, op)
            system.close()
        except SimulatedCrash:
            pass
        else:
            pytest.fail(f"boundary {crash_at} never fired (count={clock.count})")
        recovered, report = recover_and_finish(directory)
        assert report.clean, f"crash_at={crash_at}: {report.summary()}"
        if full_state(recovered) != canonical:
            failures.append(crash_at)
        recovered.close()
    assert failures == [], f"recovery diverged after crashes at boundaries {failures}"


def test_counting_and_armed_runs_share_boundary_numbering(tmp_path, boundary_count):
    """crash_at=N fires at the same labelled boundary the counting run
    numbered N — the sweep's coverage claim depends on this."""
    counting = FaultClock()
    system = ELearningSystem.with_defaults(make_config(tmp_path / "count", counting))
    for op in OPS[:4]:
        apply_op(system, op)
    system.runtime.close()
    target = counting.count  # mid-workload boundary
    armed = FaultClock(crash_at=target)
    with pytest.raises(SimulatedCrash):
        crashed = ELearningSystem.with_defaults(make_config(tmp_path / "armed", armed))
        for op in OPS:
            apply_op(crashed, op)
    assert armed.fired[-1] == counting.fired[-1]
    assert armed.count == target


def test_snapshot_restore_during_sweep_never_tokenises(tmp_path, canonical):
    """Companion to the sweep: crash right after a periodic snapshot
    commits, then assert the corpus restore ran with zero tokenizer
    calls (the replayed tail may tokenise; the *load* may not)."""
    # find the boundary just after the first snapshot commit
    probe = FaultClock()
    system = ELearningSystem.with_defaults(make_config(tmp_path / "probe", probe))
    for op in OPS:
        apply_op(system, op)
    system.close()
    commit_boundary = probe.fired.index("snapshot.committed") + 1

    directory = tmp_path / "crash"
    clock = FaultClock(crash_at=commit_boundary + 1)
    with pytest.raises(SimulatedCrash):
        crashed = ELearningSystem.with_defaults(make_config(directory, clock))
        for op in OPS:
            apply_op(crashed, op)
        crashed.close()

    calls = []
    real = corpus_store.tokenize
    corpus_store.tokenize = lambda text: (calls.append(text) or real(text))
    try:
        recovered, report = ELearningSystem.recover(
            str(directory), SystemConfig(seed_corpus=False, **CONFIG_KWARGS)
        )
    finally:
        corpus_store.tokenize = real
    assert report.snapshot_path is not None
    replayed_texts = {
        op[3] for op in OPS if op[0] == "say"
    }  # replay may tokenise tail inputs — but nothing else
    assert set(calls) <= replayed_texts
    resume = report.events_total
    for op in OPS[resume:]:
        apply_op(recovered, op)
    assert full_state(recovered) == canonical
    recovered.close()


class TestSubprocessMode:
    """Real process death (``os._exit``) for a sample of boundaries."""

    @pytest.mark.parametrize("crash_at", [3, 17, 40])
    def test_os_exit_crash_recovers_to_canonical(self, tmp_path, canonical, crash_at):
        directory = tmp_path / "d"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, str(_CHILD), str(directory), str(crash_at)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 23, (result.returncode, result.stderr)
        recovered, _report = recover_and_finish(directory)
        assert full_state(recovered) == canonical
        recovered.close()

    def test_child_outruns_boundaries_and_exits_zero(self, tmp_path, canonical):
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, str(_CHILD), str(tmp_path / "d"), "1000000"],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        recovered, report = recover_and_finish(tmp_path / "d")
        assert report.events_total == len(OPS)
        assert full_state(recovered) == canonical
        recovered.close()

    def test_fault_clock_exit_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            FaultClock(mode="explode")
        with pytest.raises(ValueError, match="crash_at"):
            FaultClock(crash_at=0)
        assert NO_FAULTS.active is False
        assert NO_FAULTS.step("anything") is None
