"""Log-corruption edge cases: torn tails, CRC damage, missing files.

Every scenario crafts real on-disk damage and asserts the recovery
contract: torn tails truncate, corrupt bytes quarantine to side files,
replay stops at the damage (prefix semantics, never a gap), and the
report says exactly what happened.
"""

from __future__ import annotations

import json

from repro.core.system import ELearningSystem, SystemConfig
from repro.durability.manager import RecoveryReport
from repro.durability.wal import (
    EventLog,
    encode_frame,
    read_log,
    segment_paths,
)


def write_log(directory, events, segment_records=1024):
    log = EventLog(directory, segment_records=segment_records)
    for event in events:
        log.append(event)
    log.close()


def events_of(n):
    return [{"type": "post", "seq": i, "text": f"message {i}"} for i in range(n)]


def fresh_report(directory):
    return RecoveryReport(data_dir=str(directory))


class TestTornTail:
    def test_torn_final_record_is_truncated(self, tmp_path):
        write_log(tmp_path, events_of(5))
        segment = segment_paths(tmp_path)[0]
        intact = segment.stat().st_size
        frame = encode_frame(json.dumps({"seq": 5}).encode())
        segment.open("ab").write(frame[: len(frame) // 2])
        report = fresh_report(tmp_path)
        assert read_log(tmp_path, report, repair=True) == events_of(5)
        assert report.truncated_bytes == len(frame) // 2
        assert report.clean  # a torn tail is the expected crash artifact
        assert segment.stat().st_size == intact
        # idempotent: a second recovery sees a clean log
        again = fresh_report(tmp_path)
        assert read_log(tmp_path, again, repair=True) == events_of(5)
        assert again.truncated_bytes == 0

    def test_tail_shorter_than_a_header_is_torn(self, tmp_path):
        write_log(tmp_path, events_of(2))
        segment = segment_paths(tmp_path)[0]
        segment.open("ab").write(b"0000")
        report = fresh_report(tmp_path)
        assert read_log(tmp_path, report, repair=True) == events_of(2)
        assert report.truncated_bytes == 4

    def test_without_repair_files_stay_untouched(self, tmp_path):
        write_log(tmp_path, events_of(3))
        segment = segment_paths(tmp_path)[0]
        segment.open("ab").write(b"torn")
        size = segment.stat().st_size
        read_log(tmp_path, fresh_report(tmp_path), repair=False)
        assert segment.stat().st_size == size


class TestCorruption:
    def test_mid_segment_crc_mismatch_quarantines(self, tmp_path):
        write_log(tmp_path, events_of(6))
        segment = segment_paths(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        frame_len = len(data) // 6  # six identical-length frames
        # flip one payload byte of the third record
        data[2 * frame_len + 25] ^= 0xFF
        segment.write_bytes(bytes(data))
        report = fresh_report(tmp_path)
        events = read_log(tmp_path, report, repair=True)
        assert events == events_of(2)  # prefix before the damage only
        assert not report.clean
        assert report.quarantined[0]["reason"] == "crc mismatch"
        side = segment.with_name(segment.name + ".quarantine")
        assert side.exists() and len(side.read_bytes()) == 4 * frame_len
        # the repaired segment holds exactly the replayable prefix
        assert read_log(tmp_path, fresh_report(tmp_path)) == events_of(2)

    def test_corruption_skips_later_segments(self, tmp_path):
        write_log(tmp_path, events_of(9), segment_records=3)
        first, second, third = segment_paths(tmp_path)
        data = bytearray(second.read_bytes())
        data[30] ^= 0xFF
        second.write_bytes(bytes(data))
        report = fresh_report(tmp_path)
        events = read_log(tmp_path, report, repair=True)
        assert events == events_of(3)
        assert report.segments_skipped == [third.name]
        # the skipped segment was quarantined whole: a second recovery
        # must not replay across the gap
        assert segment_paths(tmp_path) == [first, second]
        assert read_log(tmp_path, fresh_report(tmp_path)) == events_of(3)

    def test_torn_non_final_segment_is_a_hole_not_a_tail(self, tmp_path):
        write_log(tmp_path, events_of(6), segment_records=3)
        first, second = segment_paths(tmp_path)
        with first.open("r+b") as handle:
            handle.truncate(first.stat().st_size - 5)
        report = fresh_report(tmp_path)
        events = read_log(tmp_path, report, repair=True)
        assert events == events_of(2)
        assert not report.clean
        assert report.segments_skipped == [second.name]

    def test_non_json_payload_with_valid_crc_quarantines(self, tmp_path):
        write_log(tmp_path, events_of(2))
        segment = segment_paths(tmp_path)[0]
        segment.open("ab").write(encode_frame(b"not json at all"))
        report = fresh_report(tmp_path)
        assert read_log(tmp_path, report, repair=True) == events_of(2)
        assert report.quarantined[0]["reason"] == "payload is not valid JSON"


class TestDegenerateFiles:
    def test_empty_zero_length_segment(self, tmp_path):
        (tmp_path / "wal-00000001.log").write_bytes(b"")
        report = fresh_report(tmp_path)
        assert read_log(tmp_path, report, repair=True) == []
        assert report.clean
        # a fresh writer opens a new segment rather than reusing it
        log = EventLog(tmp_path)
        log.append({"n": 1})
        log.close()
        assert [p.name for p in segment_paths(tmp_path)] == [
            "wal-00000001.log",
            "wal-00000002.log",
        ]

    def test_snapshot_missing_with_non_empty_log_full_replay(self, tmp_path):
        config = SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=3)
        system = ELearningSystem.with_defaults(config)
        system.open_room("ds-101", topic="stacks")
        system.join("ds-101", "alice")
        for text in ("What is Stack?", "the cat sat on the mat", "a queue are a structure"):
            system.say("ds-101", "alice", text)
        canonical = (
            system.corpus.snapshot(),
            system.profiles.snapshot(),
            system.faq.snapshot(),
            list(system.server.rooms["ds-101"].transcript),
        )
        system.close()
        for snapshot in (tmp_path / "d").glob("snapshot-*.json"):
            snapshot.unlink()
        recovered, report = ELearningSystem.recover(str(tmp_path / "d"))
        assert report.snapshot_path is None
        assert report.events_replayed == report.events_total > 0
        assert recovered.corpus.snapshot() == canonical[0]
        assert recovered.profiles.snapshot() == canonical[1]
        assert recovered.faq.snapshot() == canonical[2]
        assert list(recovered.server.rooms["ds-101"].transcript) == canonical[3]
        recovered.close()

    def test_duplicated_post_records_replay_idempotently(self, tmp_path):
        config = SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=None)
        system = ELearningSystem.with_defaults(config)
        system.open_room("ds-101")
        system.join("ds-101", "alice")
        system.say("ds-101", "alice", "What is Stack?")
        canonical = (system.corpus.snapshot(), system.faq.snapshot())
        system.close()
        # duplicate the whole segment's frames (a replayed-twice log)
        segment = segment_paths(tmp_path / "d")[0]
        segment.write_bytes(segment.read_bytes() * 2)
        recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=None)
        )
        assert report.clean
        assert report.events_skipped == 3  # room + join + post, second copy
        assert (recovered.corpus.snapshot(), recovered.faq.snapshot()) == canonical
        recovered.close()
