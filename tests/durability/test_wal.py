"""The write-ahead log: frame codec, segments, fsync policies."""

from __future__ import annotations

import json
import zlib

import pytest

from repro.durability.manager import RecoveryReport
from repro.durability.wal import (
    FSYNC_MODES,
    HEADER_LENGTH,
    EventLog,
    encode_frame,
    read_log,
    scan_segment,
    segment_paths,
)


def events_of(n):
    return [{"type": "post", "seq": i, "text": f"message {i}"} for i in range(n)]


class TestFrameCodec:
    def test_frame_is_header_payload_newline(self):
        frame = encode_frame(b'{"a":1}')
        assert frame[:HEADER_LENGTH] == b'00000007 %08x ' % zlib.crc32(b'{"a":1}')
        assert frame.endswith(b'{"a":1}\n')

    def test_scan_round_trips_frames(self):
        payloads = [json.dumps(e).encode() for e in events_of(5)]
        data = b"".join(encode_frame(p) for p in payloads)
        frames, end, problem = scan_segment(data)
        assert problem is None
        assert end == len(data)
        assert [payload for _off, payload in frames] == payloads

    def test_scan_empty_bytes(self):
        assert scan_segment(b"") == ([], 0, None)


class TestEventLog:
    def test_append_read_round_trip(self, tmp_path):
        log = EventLog(tmp_path)
        for event in events_of(7):
            log.append(event)
        log.close()
        assert read_log(tmp_path) == events_of(7)

    def test_segments_roll_at_record_limit(self, tmp_path):
        log = EventLog(tmp_path, segment_records=3)
        for event in events_of(8):
            log.append(event)
        log.close()
        names = [p.name for p in segment_paths(tmp_path)]
        assert names == ["wal-00000001.log", "wal-00000002.log", "wal-00000003.log"]
        assert read_log(tmp_path) == events_of(8)

    def test_reopen_never_appends_to_old_segments(self, tmp_path):
        first = EventLog(tmp_path)
        first.append({"n": 1})
        first.close()
        second = EventLog(tmp_path)
        second.append({"n": 2})
        second.close()
        assert len(segment_paths(tmp_path)) == 2
        assert read_log(tmp_path) == [{"n": 1}, {"n": 2}]

    @pytest.mark.parametrize("fsync", FSYNC_MODES)
    def test_fsync_policies_all_write_identical_logs(self, tmp_path, fsync):
        directory = tmp_path / fsync
        directory.mkdir()
        log = EventLog(directory, fsync=fsync)
        for event in events_of(4):
            log.append(event)
        log.sync()
        log.close()
        assert read_log(directory) == events_of(4)

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            EventLog(tmp_path, fsync="sometimes")

    def test_empty_directory_reads_as_no_events(self, tmp_path):
        report = RecoveryReport(data_dir=str(tmp_path))
        assert read_log(tmp_path, report) == []
        assert report.events_total == 0
        assert report.clean
