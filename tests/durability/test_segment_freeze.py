"""Crash-at-every-boundary sweep for the corpus segment tier.

The freeze/compact path adds its own write boundaries to the durability
story: ``segment.freeze.begin`` / ``.torn`` / ``.written`` /
``.committed`` around the crash-atomic segment file write, plus the WAL
append of the ``freeze`` event that follows the rename.  This module
re-runs the fault-injection contract with a tiny freeze cadence so the
scripted workload crosses those boundaries constantly: crash at every
single one, recover, finish the workload, and the final state — records
*and* tier boundaries — must equal the uncrashed run's.  Along the way:
a committed segment file always verifies, a torn one never loads, and
recovery leaves no stray temp files behind.
"""

from __future__ import annotations

import dataclasses
import importlib.util
from pathlib import Path

import pytest

from repro.core.system import ELearningSystem, SystemConfig
from repro.corpus.segments import (
    SEGMENT_SUFFIX,
    TMP_SUFFIX,
    SegmentLoadError,
    validate_segment_file,
)
from repro.durability.faults import FaultClock, SimulatedCrash

_CHILD = Path(__file__).with_name("_crash_child.py")
_spec = importlib.util.spec_from_file_location("_crash_child", _CHILD)
_crash_child = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_crash_child)
OPS, apply_op = _crash_child.OPS, _crash_child.apply

#: Freeze after every ~2 tail records: every workload ``say`` that adds
#: records crosses a freeze boundary, maximising crash points.
CONFIG_KWARGS = dict(
    snapshot_every=5, fsync="always", corpus_segment_records=2
)


def make_config(data_dir, fault_clock=None):
    return SystemConfig(
        data_dir=str(data_dir), fault_clock=fault_clock, **CONFIG_KWARGS
    )


def full_state(system):
    # Record-level state only: *where* the tier boundaries fell depends
    # on when drains happened (recovery's final drain is one more freeze
    # barrier than an uncrashed run crossed), exactly like snapshot
    # cadence.  Layout-independence of every query is what the 3-way
    # parity sweep in tests/corpus proves; here the tier must satisfy
    # its structural invariants (below) and the records must be equal.
    return (
        system.corpus.snapshot(),
        system.profiles.snapshot(),
        system.faq.snapshot(),
        {name: list(room.transcript) for name, room in system.server.rooms.items()},
        system.clock.now(),
        system.server.total_messages(),
        dataclasses.asdict(system.pipeline.combined_stats()),
    )


def assert_tier_invariants(corpus) -> None:
    """The frozen tier is structurally sound: contiguous from zero, the
    boundary equals the segment sum and never exceeds the corpus."""
    base = 0
    for segment in corpus.segments:
        assert segment.base == base
        assert segment.count >= 1
        base += segment.count
    assert corpus.frozen_records == base <= len(corpus)


def assert_segment_dir_sane(data_dir) -> None:
    """Every committed segment file verifies end to end; torn temp files
    are the only other thing a crash may leave, and they never load."""
    segment_dir = Path(data_dir) / "segments"
    if not segment_dir.exists():
        return
    for path in segment_dir.iterdir():
        if path.name.endswith(TMP_SUFFIX):
            continue  # ignorable by contract; recovery unlinks it
        assert path.name.endswith(SEGMENT_SUFFIX), path.name
        info = validate_segment_file(path)
        assert info["count"] >= 1


@pytest.fixture(scope="module")
def canonical(tmp_path_factory):
    directory = tmp_path_factory.mktemp("canonical")
    system = ELearningSystem.with_defaults(make_config(directory / "d"))
    for op in OPS:
        apply_op(system, op)
    state = full_state(system)
    assert system.corpus.frozen_records > 0  # the cadence really fired
    assert len(system.corpus.segments) >= 2
    system.close()
    return state


@pytest.fixture(scope="module")
def boundary_count(tmp_path_factory, canonical):
    directory = tmp_path_factory.mktemp("counting")
    clock = FaultClock()  # unarmed: counts, never fires
    system = ELearningSystem.with_defaults(make_config(directory / "d", clock))
    for op in OPS:
        apply_op(system, op)
    assert full_state(system) == canonical
    system.close()
    assert any(label.startswith("segment.freeze") for label in clock.fired)
    return clock.count


def durable_input_prefix(data_dir) -> int:
    """How many workload ops are already durable.

    Unlike the base sweep, not every journalled event is a workload op
    here: ``freeze`` events ride in the same WAL.  The durable *input*
    prefix is the count of op events only."""
    from repro.durability.manager import RecoveryReport
    from repro.durability.wal import read_log

    scratch = RecoveryReport(data_dir=str(data_dir))
    events = read_log(data_dir, scratch, repair=False)
    return sum(1 for event in events if event.get("type") not in ("freeze", "compact"))


def test_crash_at_every_boundary_recovers_to_canonical(
    tmp_path, canonical, boundary_count
):
    failures = []
    for crash_at in range(1, boundary_count + 1):
        directory = tmp_path / f"crash-{crash_at}"
        clock = FaultClock(crash_at=crash_at)
        try:
            system = ELearningSystem.with_defaults(make_config(directory, clock))
            for op in OPS:
                apply_op(system, op)
            system.close()
        except SimulatedCrash:
            pass
        else:
            pytest.fail(f"boundary {crash_at} never fired (count={clock.count})")
        assert_segment_dir_sane(directory)
        resume = durable_input_prefix(directory)
        assert 0 <= resume <= len(OPS)
        recovered, report = ELearningSystem.recover(
            str(directory), SystemConfig(**CONFIG_KWARGS)
        )
        assert report.clean, f"crash_at={crash_at}: {report.summary()}"
        for op in OPS[resume:]:
            apply_op(recovered, op)
        assert_tier_invariants(recovered.corpus)
        assert recovered.corpus.frozen_records > 0
        if full_state(recovered) != canonical:
            failures.append(crash_at)
        # Recovery reconstructed the writer, which sweeps temp files.
        assert not list((directory / "segments").glob(f"*{TMP_SUFFIX}"))
        recovered.close()
    assert failures == [], f"recovery diverged after crashes at boundaries {failures}"


def test_mid_freeze_crash_leaves_no_loadable_torn_segment(tmp_path):
    """Crash exactly at ``segment.freeze.torn`` (half the file flushed):
    the committed tier is untouched and the half-written file can never
    be opened as a segment."""
    probe = FaultClock()
    system = ELearningSystem.with_defaults(make_config(tmp_path / "probe", probe))
    for op in OPS:
        apply_op(system, op)
    system.close()
    torn_boundary = probe.fired.index("segment.freeze.torn") + 1

    directory = tmp_path / "crash"
    clock = FaultClock(crash_at=torn_boundary)
    with pytest.raises(SimulatedCrash):
        crashed = ELearningSystem.with_defaults(make_config(directory, clock))
        for op in OPS:
            apply_op(crashed, op)
        crashed.close()
    temps = list((directory / "segments").glob(f"*{TMP_SUFFIX}"))
    assert temps, "the torn boundary should leave a temp file behind"
    for temp in temps:
        with pytest.raises(SegmentLoadError):
            validate_segment_file(temp)
    assert_segment_dir_sane(directory)


def test_orphan_segment_from_pre_journal_crash_is_rewritten(tmp_path):
    """Crash between the segment rename and the WAL append of its
    ``freeze`` event: the orphan file is fully committed but
    unreferenced.  Recovery replays the workload tail, the deterministic
    re-freeze atomically overwrites the identical file, and the final
    state matches an uncrashed run."""
    probe = FaultClock()
    system = ELearningSystem.with_defaults(make_config(tmp_path / "probe", probe))
    for op in OPS:
        apply_op(system, op)
    canonical_state = full_state(system)
    system.close()
    committed = probe.fired.index("segment.freeze.committed") + 1

    directory = tmp_path / "crash"
    clock = FaultClock(crash_at=committed)
    with pytest.raises(SimulatedCrash):
        crashed = ELearningSystem.with_defaults(make_config(directory, clock))
        for op in OPS:
            apply_op(crashed, op)
        crashed.close()
    # The crash landed after os.replace — the segment file exists...
    orphans = sorted((directory / "segments").glob(f"*{SEGMENT_SUFFIX}"))
    assert orphans
    # ...but no freeze event reached the log for it.
    resume = durable_input_prefix(directory)
    recovered, report = ELearningSystem.recover(
        str(directory), SystemConfig(**CONFIG_KWARGS)
    )
    assert report.clean, report.summary()
    for op in OPS[resume:]:
        apply_op(recovered, op)
    assert full_state(recovered) == canonical_state
    recovered.close()


# Bare-log replay: with snapshots pushed out of the way, recovery must
# rebuild the tier from the journalled ``freeze``/``compact`` events
# alone (idempotently — replay's own auto-freezes may run ahead of the
# logged boundaries).
BARE_LOG_KWARGS = dict(
    snapshot_every=10_000, fsync="always", corpus_segment_records=2
)


def _crashed_dir_with_freeze_and_compact(tmp_path):
    """A data dir whose log holds posts, freezes and one compact, with
    no snapshot: the crash lands on the first boundary after the
    compact event is durable."""
    split = len(OPS) // 2
    probe = FaultClock()
    system = ELearningSystem.with_defaults(
        SystemConfig(
            data_dir=str(tmp_path / "probe"), fault_clock=probe, **BARE_LOG_KWARGS
        )
    )
    for op in OPS[:split]:
        apply_op(system, op)
    assert len(system.corpus.segments) >= 2
    assert system.corpus.compact() is not None
    after_compact = probe.count
    for op in OPS[split:]:
        apply_op(system, op)
    canonical_state = full_state(system)
    system.close()

    directory = tmp_path / "crash"
    clock = FaultClock(crash_at=after_compact + 1)
    with pytest.raises(SimulatedCrash):
        crashed = ELearningSystem.with_defaults(
            SystemConfig(
                data_dir=str(directory), fault_clock=clock, **BARE_LOG_KWARGS
            )
        )
        for op in OPS[:split]:
            apply_op(crashed, op)
        crashed.corpus.compact()
        for op in OPS[split:]:
            apply_op(crashed, op)
        crashed.close()
    assert not list(Path(directory).glob("snapshot-*.json"))
    return directory, canonical_state


def test_freeze_and_compact_events_replay_from_bare_log(tmp_path):
    directory, canonical_state = _crashed_dir_with_freeze_and_compact(tmp_path)
    resume = durable_input_prefix(directory)
    recovered, report = ELearningSystem.recover(
        str(directory), SystemConfig(**BARE_LOG_KWARGS)
    )
    assert report.clean, report.summary()
    assert report.events_replayed > 0
    assert_tier_invariants(recovered.corpus)
    assert recovered.corpus.frozen_records > 0
    for op in OPS[resume:]:
        apply_op(recovered, op)
    assert full_state(recovered) == canonical_state
    recovered.close()


def test_freeze_and_compact_events_diverge_without_segmented_corpus(tmp_path):
    """The same log recovered under a config without
    ``corpus_segment_records``: tier events cannot apply to a plain
    corpus, and recovery must say so instead of silently dropping
    them."""
    directory, _canonical = _crashed_dir_with_freeze_and_compact(tmp_path)
    recovered, report = ELearningSystem.recover(
        str(directory),
        SystemConfig(snapshot_every=10_000, fsync="always"),
    )
    assert any("not segmented" in d for d in report.divergences), report.divergences
    assert not hasattr(recovered.corpus, "segments") or not recovered.corpus.segments
    recovered.close()
