"""Snapshot + log-tail recovery: the durable system end to end."""

from __future__ import annotations

import dataclasses

import pytest

import repro.corpus.store as corpus_store
from repro.core.system import ELearningSystem, SystemConfig
from repro.durability.manager import RecoveryReport
from repro.durability.snapshot import SnapshotStore
from repro.state.mergeable import snapshots_equal
from repro.durability.wal import read_log

SCRIPT = (
    ("What is Stack?", "alice"),
    ("the cat sat on the mat", "bob"),
    ("a queue are a structure", "alice"),
    ("What is Queue?", "bob"),
    ("stack uses pop operation", "alice"),
    ("the stack is a queue", "bob"),
    ("What is Tree?", "alice"),
)


def run_script(system, script=SCRIPT):
    system.open_room("ds-101", topic="stacks")
    system.join("ds-101", "alice")
    system.join("ds-101", "bob")
    for text, user in script:
        system.say("ds-101", user, text)


def full_state(system):
    return (
        system.corpus.snapshot(),
        system.profiles.snapshot(),
        system.faq.snapshot(),
        {name: list(room.transcript) for name, room in system.server.rooms.items()},
        system.clock.now(),
        system.server.total_messages(),
        dataclasses.asdict(system.pipeline.combined_stats()),
    )


def canonical_state(tmp_path, config_kwargs=None, script=SCRIPT):
    """The uncrashed reference run (durable, same code path)."""
    kwargs = dict(config_kwargs or {})
    kwargs.setdefault("snapshot_every", 4)
    system = ELearningSystem.with_defaults(
        SystemConfig(data_dir=str(tmp_path / "canonical"), **kwargs)
    )
    run_script(system, script)
    if system.pending_supervision:
        system.drain()
    state = full_state(system)
    system.close()
    return state


class TestCleanRestart:
    def test_recover_equals_canonical_run(self, tmp_path):
        canonical = canonical_state(tmp_path)
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=4)
        )
        run_script(system)
        system.close()
        recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=4)
        )
        assert report.clean
        assert full_state(recovered) == canonical
        assert snapshots_equal(recovered.corpus, recovered.corpus)
        recovered.close()

    def test_recovered_system_keeps_journalling(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=4)
        )
        run_script(system)
        system.close()
        recovered, _ = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=4)
        )
        before = recovered.server.total_messages()
        recovered.say("ds-101", "alice", "What is Graph?")
        recovered.close()
        # a second recovery sees the continued history
        again, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=4)
        )
        assert report.clean
        assert again.server.total_messages() > before
        assert again.server.rooms["ds-101"].transcript[before].text == "What is Graph?"
        again.close()

    def test_double_recovery_is_idempotent(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=3)
        )
        run_script(system)
        system.close()
        first, _ = ELearningSystem.recover(str(tmp_path / "d"))
        state = full_state(first)
        first.close()
        second, report = ELearningSystem.recover(str(tmp_path / "d"))
        assert report.clean
        assert full_state(second) == state
        second.close()

    def test_periodic_snapshots_prune_to_keep_count(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=2)
        )
        run_script(system)
        system.close()
        store = SnapshotStore(tmp_path / "d")
        assert 1 <= len(store.existing()) <= 3

    def test_fresh_system_refuses_existing_data_dir(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"))
        )
        system.open_room("ds-101")
        system.close()
        with pytest.raises(ValueError, match="recover"):
            ELearningSystem.with_defaults(SystemConfig(data_dir=str(tmp_path / "d")))


class TestCloseFlushesPendingSupervision:
    """A clean shutdown must never lose enqueued supervision work."""

    @pytest.mark.parametrize("mode,shards", [("queued", 1), ("sharded", 2)])
    def test_close_drains_before_final_snapshot(self, tmp_path, mode, shards):
        canonical = canonical_state(
            tmp_path / mode, {"runtime_mode": mode, "shards": shards, "auto_drain": False}
        )
        system = ELearningSystem.with_defaults(
            SystemConfig(
                data_dir=str(tmp_path / mode / "d"),
                snapshot_every=4,
                runtime_mode=mode,
                shards=shards,
                auto_drain=False,
            )
        )
        run_script(system)
        assert system.pending_supervision > 0  # the latent-leak setup
        system.close()
        assert system.pending_supervision == 0
        recovered, report = ELearningSystem.recover(
            str(tmp_path / mode / "d"),
            SystemConfig(
                snapshot_every=4, runtime_mode=mode, shards=shards, auto_drain=False
            ),
        )
        assert report.clean
        assert recovered.corpus.snapshot() == canonical[0]
        assert recovered.profiles.snapshot() == canonical[1]
        assert recovered.faq.snapshot() == canonical[2]
        recovered.close()

    def test_close_is_idempotent(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"))
        )
        system.open_room("ds-101")
        system.close()
        system.close()
        snapshots = SnapshotStore(tmp_path / "d").existing()
        assert len(snapshots) == 1


class TestSnapshotOnlyRecovery:
    def test_snapshot_restore_never_tokenises(self, tmp_path, monkeypatch):
        """Corpus reload is columnar: zero tokenizer calls on recovery."""
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=None)
        )
        run_script(system)
        system.close()  # final snapshot covers the whole log: empty tail
        state = full_state(system)

        calls = []
        real = corpus_store.tokenize
        monkeypatch.setattr(
            corpus_store, "tokenize", lambda text: (calls.append(text) or real(text))
        )
        recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(seed_corpus=False, snapshot_every=None)
        )
        assert report.events_replayed == 0  # everything came from the snapshot
        assert calls == []
        assert full_state(recovered) == state
        recovered.close()

    def test_corrupt_snapshot_falls_back_to_older_one(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=3)
        )
        run_script(system)
        state = full_state(system)
        system.close()
        newest = SnapshotStore(tmp_path / "d").existing()[-1]
        data = bytearray(newest.read_bytes())
        data[40] ^= 0xFF
        newest.write_bytes(bytes(data))
        recovered, report = ELearningSystem.recover(str(tmp_path / "d"))
        assert report.snapshots_quarantined == [newest.name]
        assert report.snapshot_path is not None  # an older snapshot served
        assert newest.with_name(newest.name + ".corrupt").exists()
        assert full_state(recovered) == state
        recovered.close()

    def test_replay_tail_regenerates_agent_replies(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=None)
        )
        run_script(system)
        transcript = list(system.server.rooms["ds-101"].transcript)
        agent_replies = [m for m in transcript if m.kind.value == "agent"]
        assert agent_replies  # the script provokes interventions
        state = full_state(system)
        system.runtime.close()  # abandon without close(): no snapshot at all
        recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=None)
        )
        assert report.snapshot_path is None
        assert full_state(recovered) == state
        replayed = list(recovered.server.rooms["ds-101"].transcript)
        assert [m for m in replayed if m.kind.value == "agent"] == agent_replies
        recovered.close()

    def test_report_counts_match_log(self, tmp_path):
        system = ELearningSystem.with_defaults(
            SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=None)
        )
        run_script(system)
        system.runtime.close()
        events = read_log(tmp_path / "d", RecoveryReport(data_dir="x"))
        # 1 room + 2 joins + 7 posts, no agent replies journalled
        assert len(events) == 10
        assert [e["type"] for e in events[:3]] == ["room", "join", "join"]
        assert all(e["type"] == "post" for e in events[3:])
        _recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=None)
        )
        assert report.events_total == 10
        assert report.events_replayed == 10
        _recovered.close()


class TestSnapshotStoreValidation:
    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            SnapshotStore(tmp_path, keep=0)

    def test_restore_rejects_foreign_document(self, tmp_path):
        from repro.durability.snapshot import restore_snapshot

        system = ELearningSystem.with_defaults(SystemConfig())
        with pytest.raises(ValueError, match="not a"):
            restore_snapshot(system, {"format": "someone-elses-format/9"})
        system.close()

    def test_latest_skips_non_json_payload(self, tmp_path):
        from repro.durability.wal import encode_frame

        store = SnapshotStore(tmp_path, keep=3)
        bogus = tmp_path / "snapshot-000001.json"
        bogus.write_bytes(encode_frame(b"\xff\xfenot json at all"))
        report = RecoveryReport(data_dir=str(tmp_path))
        assert store.load_latest(report) is None
        assert bogus.with_suffix(".json.corrupt").exists()
