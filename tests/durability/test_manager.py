"""DurabilityManager unit behaviour: validation, closed no-ops, the
recovery report's renderings, and replay divergence handling."""

from __future__ import annotations

import pytest

from repro.core.system import ELearningSystem, SystemConfig
from repro.durability.manager import (
    DurabilityManager,
    RecoveryReport,
    replay_events,
)


class TestManagerValidation:
    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            DurabilityManager(tmp_path, fsync="sometimes")

    def test_zero_snapshot_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="snapshot_every"):
            DurabilityManager(tmp_path, snapshot_every=0)


class TestClosedManager:
    def test_close_is_idempotent_and_stops_journalling(self, tmp_path):
        manager = DurabilityManager(tmp_path)
        manager.room_created("r", "t", 0.0)
        manager.close()
        manager.close()  # second close is a no-op
        manager.room_created("ignored", "t", 1.0)  # journalling stopped
        assert manager.total == 1

    def test_snapshot_after_close_is_a_noop(self, tmp_path):
        manager = DurabilityManager(tmp_path)
        manager.close()
        assert manager.snapshot(None) is None
        assert manager.maybe_snapshot(None) is None


class TestRecoveryReportRendering:
    def degraded(self):
        return RecoveryReport(
            data_dir="/tmp/d",
            snapshot_path=None,
            truncated_bytes=7,
            quarantined=[{"segment": "wal-00000001.log", "offset": 42, "reason": "crc mismatch"}],
            segments_skipped=["wal-00000002.log"],
            snapshots_quarantined=["snapshot-000000000001.json.corrupt"],
            divergences=["event 3 (post): no such room"],
        )

    def test_to_dict_round_trips_every_field(self):
        report = self.degraded()
        data = report.to_dict()
        assert data["clean"] is False
        assert data["truncated_bytes"] == 7
        assert data["quarantined"][0]["reason"] == "crc mismatch"
        assert data["segments_skipped"] == ["wal-00000002.log"]
        assert data["divergences"] == ["event 3 (post): no such room"]

    def test_summary_mentions_every_problem(self):
        text = self.degraded().summary()
        assert "(none — full replay)" in text
        assert "torn tail truncated: 7" in text
        assert "crc mismatch" in text
        assert "segments not replayed: wal-00000002.log" in text
        assert "snapshots quarantined:" in text
        assert "divergence: event 3" in text
        assert "degraded" in text

    def test_summary_of_a_clean_report(self):
        text = RecoveryReport(data_dir="/tmp/d", snapshot_path="snap").summary()
        assert "recovery: clean" in text
        assert "torn tail" not in text


class TestReplayDivergences:
    """Events that cannot be applied are reported, never fatal."""

    def fresh(self):
        system = ELearningSystem.with_defaults()
        system.open_room("ds-101", topic="t")
        system.join("ds-101", "alice")
        return system

    def test_post_to_missing_room_is_a_divergence(self):
        system = self.fresh()
        report = RecoveryReport(data_dir="x")
        events = [{"type": "post", "seq": 99, "room": "nope", "sender": "alice",
                   "kind": "user", "text": "hi", "ts": 5.0, "reply_to": None}]
        replay_events(system, events, 0, report)
        assert report.events_replayed == 0
        assert "event 0 (post)" in report.divergences[0]

    def test_sequence_mismatch_is_a_divergence(self):
        system = self.fresh()
        report = RecoveryReport(data_dir="x")
        events = [{"type": "post", "seq": 99, "room": "ds-101", "sender": "alice",
                   "kind": "user", "text": "What is Stack?", "ts": 5.0,
                   "reply_to": None, "advance": 1.0}]
        replay_events(system, events, 0, report)
        assert report.events_replayed == 1  # applied, but flagged
        assert "logged 99" in report.divergences[0]

    def test_unknown_event_type_is_a_divergence(self):
        system = self.fresh()
        report = RecoveryReport(data_dir="x")
        replay_events(system, [{"type": "widget"}], 0, report)
        assert "unknown type 'widget'" in report.divergences[0]

    def test_leave_of_a_non_member_is_skipped(self):
        system = self.fresh()
        report = RecoveryReport(data_dir="x")
        replay_events(
            system, [{"type": "leave", "room": "ds-101", "user": "ghost", "ts": 2.0}],
            0, report,
        )
        assert report.events_skipped == 1
        assert report.divergences == []


class TestDrainEventReplay:
    def test_journalled_drain_replays_through_the_runtime(self, tmp_path):
        """Deferred-drain runtimes journal explicit drains; replaying one
        re-flushes the queued supervision at the logged time."""
        config = SystemConfig(
            runtime_mode="queued", auto_drain=False,
            data_dir=str(tmp_path / "d"), snapshot_every=None,
        )
        system = ELearningSystem.with_defaults(config)
        system.open_room("ds-101", topic="t")
        system.join("ds-101", "alice")
        system.say("ds-101", "alice", "What is Stack?")
        assert system.pending_supervision > 0
        system.drain()
        canonical = (system.corpus.snapshot(), system.faq.snapshot())
        system.durability.close()  # abandon without a snapshot
        system.runtime.close()
        recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"),
            SystemConfig(runtime_mode="queued", auto_drain=False, snapshot_every=None),
        )
        assert report.clean
        assert report.events_replayed == 4  # room + join + post + drain
        assert (recovered.corpus.snapshot(), recovered.faq.snapshot()) == canonical
        recovered.close()


class TestMembershipReplayParity:
    """Regression: journalled membership churn must replay to the same
    state it produced live — role changes included, duplicate joins
    excluded."""

    def recover_after(self, tmp_path, drive):
        config = SystemConfig(data_dir=str(tmp_path / "d"), snapshot_every=None)
        system = ELearningSystem.with_defaults(config)
        drive(system)
        live = {
            name: {u: p.role.value for u, p in room.participants.items()}
            for name, room in system.server.rooms.items()
        }
        system.durability.close()  # abandon without a snapshot: WAL-only recovery
        system.runtime.close()
        recovered, report = ELearningSystem.recover(
            str(tmp_path / "d"), SystemConfig(snapshot_every=None)
        )
        return live, recovered, report

    def test_role_change_survives_replay(self, tmp_path):
        from repro.chatroom.messages import Role

        def drive(system):
            system.open_room("ds-101", topic="t")
            system.join("ds-101", "alice")
            system.join("ds-101", "alice", Role.TEACHER)

        live, recovered, report = self.recover_after(tmp_path, drive)
        assert report.clean
        assert live == {"ds-101": {"alice": "teacher"}}
        replayed = {
            name: {u: p.role.value for u, p in room.participants.items()}
            for name, room in recovered.server.rooms.items()
        }
        assert replayed == live
        recovered.close()

    def test_duplicate_join_is_not_journalled(self, tmp_path):
        def drive(system):
            system.open_room("ds-101", topic="t")
            assert system.join("ds-101", "alice") is True
            assert system.join("ds-101", "alice") is False  # same role: no-op

        live, recovered, report = self.recover_after(tmp_path, drive)
        assert report.clean
        assert report.events_replayed == 2  # room + one join, not two
        assert recovered.server.get_room("ds-101").is_member("alice")
        recovered.close()

    def test_noop_leave_is_not_journalled(self, tmp_path):
        def drive(system):
            system.open_room("ds-101", topic="t")
            assert system.leave("ds-101", "ghost") is False

        live, recovered, report = self.recover_after(tmp_path, drive)
        assert report.clean
        assert report.events_replayed == 1  # the room only
        recovered.close()
