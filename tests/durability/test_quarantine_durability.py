"""Quarantine durability: dead letters survive crashes like messages do.

Extends the crash-at-every-boundary fault-injection scenario with an
armed :class:`RuntimeFaultPlan`: a poison item dead-letters mid-workload
(journaling a ``quarantine`` WAL event), and the process is killed at
each on-disk boundary.  After recovery the item must be either back in
the quarantine store (its event was durable — replay short-circuits it
straight into the store, no re-analysis) or fully supervised (the
crash predated the event, so replay re-ran the analysis fault-free);
in both cases finishing the workload and redriving converges the state
to the fault-free run's, with zero silent loss.

A second scenario crashes *after* an operator ``redrive()``: the logged
``requeue`` events must replay too, leaving the store empty and the
redriven effects in place.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.chatroom import MessageKind
from repro.core.system import ELearningSystem, SystemConfig
from repro.durability.faults import FaultClock, SimulatedCrash
from repro.resilience import RuntimeFaultPlan

CONFIG_KWARGS = dict(snapshot_every=4, fsync="always")
ROOM = "ds-101"
TOPIC = "data structures"
USERS = ("alice", "bob")

SCRIPT = (
    ("alice", "We push an element onto the stack."),  # the poison item
    ("bob", "What is a stack?"),
    ("alice", "The tree doesn't have pop method."),
    ("bob", "I push the data into a tree."),
    ("alice", "Thanks. What is Stack?"),
    ("bob", "The stack is full."),
)


def poison_plan() -> RuntimeFaultPlan:
    """Message 1's first parser crossing fails the whole retry budget."""
    return RuntimeFaultPlan(fail_at=1, fail_times=3, stage="parser")


def make_config(data_dir, fault_clock=None, runtime_faults=None) -> SystemConfig:
    return SystemConfig(
        data_dir=str(data_dir),
        fault_clock=fault_clock,
        runtime_faults=runtime_faults,
        **CONFIG_KWARGS,
    )


def build_system(config: SystemConfig) -> ELearningSystem:
    system = ELearningSystem.with_defaults(config)
    system.open_room(ROOM, topic=TOPIC)
    for user in USERS:
        system.join(ROOM, user)
    return system


def apply_remaining(system: ELearningSystem) -> None:
    """Re-apply the inputs the crash lost (delivery count = durable
    prefix: posts are delivered in script order, quarantine/requeue
    events never add messages)."""
    if ROOM not in system.server.rooms:
        system.open_room(ROOM, topic=TOPIC)
    room = system.server.get_room(ROOM)
    for user in USERS:
        if user not in room.participants:
            system.join(ROOM, user)
    delivered = sum(1 for m in room.transcript if m.kind is MessageKind.USER)
    for sender, text in SCRIPT[delivered:]:
        system.say(ROOM, sender, text)
    system.drain()


def canonical_state(system: ELearningSystem):
    """Order-independent converged state (same shape as the chaos
    suite's): a redriven item commits later than its neighbours, so
    only insertion orders may differ from the fault-free run."""
    room = system.server.get_room(ROOM)
    users = sorted(
        (m.sender, m.text, m.timestamp)
        for m in room.transcript
        if m.kind is MessageKind.USER
    )
    replies = sorted(
        (m.sender, m.text)
        for m in room.transcript
        if m.kind is not MessageKind.USER
    )
    corpus = sorted(
        json.dumps(
            {k: v for k, v in record.to_dict().items() if k != "record_id"},
            sort_keys=True,
        )
        for record in system.corpus.records()
    )
    profiles = sorted(
        json.dumps(p.to_dict(), sort_keys=True) for p in system.profiles.all()
    )
    faq = sorted(
        json.dumps(pair.to_dict(), sort_keys=True) for pair in system.faq.pairs()
    )
    stats = dataclasses.asdict(system.pipeline.combined_stats())
    return (users, replies, corpus, profiles, faq, stats)


def settle(system: ELearningSystem) -> None:
    system.redrive()
    assert system.supervision_backlog == 0
    assert system.quarantined == 0


@pytest.fixture(scope="module")
def canonical(tmp_path_factory):
    """The fault-free durable reference run."""
    system = build_system(make_config(tmp_path_factory.mktemp("canonical") / "d"))
    for sender, text in SCRIPT:
        system.say(ROOM, sender, text)
    system.drain()
    state = canonical_state(system)
    system.close()
    return state


def run_poisoned(data_dir, fault_clock=None) -> ELearningSystem:
    system = build_system(make_config(data_dir, fault_clock, poison_plan()))
    for sender, text in SCRIPT:
        system.say(ROOM, sender, text)
    system.drain()
    return system


@pytest.fixture(scope="module")
def boundary_count(tmp_path_factory, canonical):
    clock = FaultClock()  # unarmed: counts, never fires
    system = run_poisoned(tmp_path_factory.mktemp("counting") / "d", clock)
    assert system.quarantined == 1
    system.close()
    assert clock.count > len(SCRIPT)
    return clock.count


def crash_and_recover(directory, crash_at, canonical):
    clock = FaultClock(crash_at=crash_at)
    try:
        system = run_poisoned(directory, clock)
        system.close()
    except SimulatedCrash:
        pass
    else:
        pytest.fail(f"boundary {crash_at} never fired (count={clock.count})")
    recovered, report = ELearningSystem.recover(
        str(directory), SystemConfig(**CONFIG_KWARGS)
    )
    assert report.clean, f"crash_at={crash_at}: {report.summary()}"
    # Zero silent loss: the item is either dead-lettered (its WAL event
    # was durable) or fully supervised (replay re-ran it fault-free).
    assert recovered.quarantined in (0, 1)
    if recovered.quarantined:
        row = recovered.resilience.quarantine.rows()[0]
        assert row.stage == "parser"
        assert "InjectedFault" in row.error
        assert row.attempts == 3
    apply_remaining(recovered)
    settle(recovered)
    assert canonical_state(recovered) == canonical, f"crash_at={crash_at}"
    recovered.close()


def spread(n: int, points: int = 8) -> list[int]:
    if n <= points:
        return list(range(1, n + 1))
    step = (n - 1) / (points - 1)
    return sorted({round(1 + i * step) for i in range(points)})


class TestQuarantineSurvivesCrashes:
    def test_boundary_subset(self, tmp_path, canonical, boundary_count):
        for crash_at in spread(boundary_count):
            crash_and_recover(tmp_path / f"crash-{crash_at}", crash_at, canonical)

    @pytest.mark.slow
    def test_every_boundary(self, tmp_path, canonical, boundary_count):
        for crash_at in range(1, boundary_count + 1):
            crash_and_recover(tmp_path / f"crash-{crash_at}", crash_at, canonical)

    def test_quarantine_event_is_durable_before_the_next_post(
        self, tmp_path, canonical
    ):
        """Crash on the first boundary *after* message 1's supervision:
        the quarantine event must already be on disk (fsync=always)."""
        probe = FaultClock()
        system = build_system(make_config(tmp_path / "probe", probe, poison_plan()))
        system.say(ROOM, *SCRIPT[0])
        assert system.quarantined == 1
        after_first = probe.count
        system.runtime.close()

        directory = tmp_path / "crash"
        crash_and_recover_at = after_first + 1  # first boundary of post 2
        clock = FaultClock(crash_at=crash_and_recover_at)
        with pytest.raises(SimulatedCrash):
            crashed = run_poisoned(directory, clock)
            crashed.close()
        recovered, report = ELearningSystem.recover(
            str(directory), SystemConfig(**CONFIG_KWARGS)
        )
        assert report.clean
        assert recovered.quarantined == 1  # the row came back from the log
        row = recovered.resilience.quarantine.rows()[0]
        assert (row.stage, row.attempts) == ("parser", 3)
        assert row.text == SCRIPT[0][1]
        apply_remaining(recovered)
        settle(recovered)
        assert canonical_state(recovered) == canonical
        recovered.close()


class TestRequeueEventsReplay:
    def test_crash_after_redrive_leaves_the_store_empty(self, tmp_path, canonical):
        """An operator redrive journals ``requeue`` events; replaying
        them must pop the store and re-commit the redriven effects."""
        directory = tmp_path / "d"
        system = run_poisoned(directory)
        assert system.quarantined == 1
        system.redrive()
        assert system.quarantined == 0
        # Crash: abandon the system without close() — the WAL (fsync
        # always) is durable, the final snapshot never happens.
        system.runtime.close()

        recovered, report = ELearningSystem.recover(
            str(directory), SystemConfig(**CONFIG_KWARGS)
        )
        assert report.clean, report.summary()
        assert recovered.quarantined == 0
        assert recovered.supervision_backlog == 0
        assert canonical_state(recovered) == canonical
        recovered.close()

    def test_clean_shutdown_snapshot_carries_the_quarantine(self, tmp_path):
        """close() while an item is dead-lettered: the snapshot row
        restores on recovery without replaying the original event."""
        directory = tmp_path / "d"
        system = run_poisoned(directory)
        assert system.quarantined == 1
        system.close()  # final snapshot covers the log
        recovered, report = ELearningSystem.recover(
            str(directory), SystemConfig(**CONFIG_KWARGS)
        )
        assert report.clean
        assert report.events_replayed == 0  # state came from the snapshot
        assert recovered.quarantined == 1
        assert recovered.resilience.quarantine.rows()[0].text == SCRIPT[0][1]
        recovered.close()
