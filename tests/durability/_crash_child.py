"""Subprocess body for the crash-point harness.

Run as ``python _crash_child.py DATA_DIR CRASH_AT`` (PYTHONPATH=src):
drives the shared scripted workload against a durable system with a
``FaultClock(mode="exit")`` armed at boundary ``CRASH_AT``, so the
process dies with a real ``os._exit`` — no atexit hooks, no flushes.
Exit code 23 = the injected crash fired; 0 = the workload outran the
boundary count.  The parent test imports :data:`OPS` / :func:`apply`
from this file, so both modes (injected exception, subprocess) and the
canonical run share one workload definition.
"""

from __future__ import annotations

import sys

# One room of mixed traffic + a second room, provoking every supervision
# path: questions (FAQ), syntax errors, semantic violations, correct
# statements, membership churn.
OPS = (
    ("room", "ds-101", "stacks"),
    ("join", "ds-101", "alice"),
    ("join", "ds-101", "bob"),
    ("say", "ds-101", "alice", "What is Stack?"),
    ("say", "ds-101", "bob", "the cat sat on the mat"),
    ("say", "ds-101", "alice", "a queue are a structure"),
    ("room", "ds-201", "queues"),
    ("join", "ds-201", "carol"),
    ("say", "ds-201", "carol", "What is Queue?"),
    ("say", "ds-101", "bob", "stack uses pop operation"),
    ("leave", "ds-101", "bob"),
    ("say", "ds-201", "carol", "the stack is a queue"),
)


def apply(system, op) -> None:
    if op[0] == "room":
        system.open_room(op[1], topic=op[2])
    elif op[0] == "join":
        system.join(op[1], op[2])
    elif op[0] == "leave":
        system.server.leave(op[1], op[2])
    elif op[0] == "say":
        system.say(op[1], op[2], op[3])
    else:  # pragma: no cover - guards workload typos
        raise ValueError(f"unknown op {op!r}")


def main(data_dir: str, crash_at: int) -> int:
    from repro.core.system import ELearningSystem, SystemConfig
    from repro.durability.faults import FaultClock

    clock = FaultClock(crash_at=crash_at, mode="exit")
    system = ELearningSystem.with_defaults(
        SystemConfig(
            data_dir=data_dir, snapshot_every=5, fsync="always", fault_clock=clock
        )
    )
    for op in OPS:
        apply(system, op)
    system.close()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1], int(sys.argv[2])))
