"""Shared fixtures: expensive dictionaries are built once per session."""

from __future__ import annotations

import pytest

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.lexicon import default_dictionary, toy_dictionary


@pytest.fixture(scope="session")
def full_dictionary():
    """The complete English + Data-Structure dictionary."""
    return default_dictionary()


@pytest.fixture(scope="session")
def full_parser(full_dictionary):
    """A parser over the full dictionary."""
    return Parser(full_dictionary)


@pytest.fixture(scope="session")
def toy_parser():
    """A parser over the paper's Figure-1 toy dictionary (no wall)."""
    return Parser(toy_dictionary(), ParseOptions(use_wall=False))
