"""Synthetic workload: generation, injection, classroom sessions."""

from __future__ import annotations

import pytest

from repro.core.system import ELearningSystem
from repro.ontology.domains import default_ontology
from repro.simulation import (
    ClassroomSession,
    ErrorClass,
    ErrorInjector,
    LearnerProfile,
    SentenceGenerator,
    SimulatedLearner,
)


class TestSentenceGenerator:
    def test_deterministic(self):
        a = SentenceGenerator(default_ontology(), seed=5)
        b = SentenceGenerator(default_ontology(), seed=5)
        assert [a.correct_statement().text for _ in range(10)] == [
            b.correct_statement().text for _ in range(10)
        ]

    def test_correct_statements_parse_cleanly(self, full_parser):
        generator = SentenceGenerator(default_ontology(), seed=3)
        for _ in range(60):
            sentence = generator.correct_statement()
            result = full_parser.parse(sentence.text)
            assert result.null_count == 0, sentence.text
            assert result.best.cost == 0, sentence.text

    def test_violations_parse_but_are_wrong(self, full_parser):
        generator = SentenceGenerator(default_ontology(), seed=3)
        for _ in range(30):
            sentence = generator.semantic_violation()
            assert not sentence.semantically_correct
            assert full_parser.parse(sentence.text).null_count == 0, sentence.text

    def test_questions_marked(self):
        generator = SentenceGenerator(default_ontology(), seed=1)
        for _ in range(20):
            assert generator.question().is_question

    def test_ground_truth_pairs_respect_ontology(self):
        ontology = default_ontology()
        generator = SentenceGenerator(ontology, seed=9)
        for _ in range(40):
            sentence = generator.correct_statement()
            if sentence.operation and sentence.concept and "doesn't" not in sentence.text:
                assert ontology.has_operation(sentence.concept, sentence.operation), sentence.text


class TestErrorInjector:
    def test_article_drop(self):
        injector = ErrorInjector(seed=0)
        result = injector.inject("The stack is full.", ErrorClass.ARTICLE_DROP)
        assert result.injected
        assert "the" not in result.text.lower().split()

    def test_agreement_swap(self):
        injector = ErrorInjector(seed=0)
        result = injector.inject("The stack is full.", ErrorClass.AGREEMENT)
        assert result.injected
        assert "are" in result.text.split()

    def test_word_order(self):
        injector = ErrorInjector(seed=0)
        result = injector.inject("The stack is full.", ErrorClass.WORD_ORDER)
        assert result.injected
        assert sorted(result.text.lower().rstrip(".").split()) == sorted(
            "the stack is full".split()
        )

    def test_unknown_word(self):
        injector = ErrorInjector(seed=0)
        result = injector.inject("The stack is full.", ErrorClass.UNKNOWN_WORD)
        assert result.injected
        assert result.error == ErrorClass.UNKNOWN_WORD

    def test_not_applicable_returns_none(self):
        injector = ErrorInjector(seed=0)
        result = injector.inject("Pop it.", ErrorClass.ARTICLE_DROP)
        assert not result.injected
        assert result.text == "Pop it."

    def test_inject_random_deterministic(self):
        a = ErrorInjector(seed=4).inject_random("The stack is full.")
        b = ErrorInjector(seed=4).inject_random("The stack is full.")
        assert a == b

    def test_terminator_preserved(self):
        injector = ErrorInjector(seed=0)
        result = injector.inject("The stack is full.", ErrorClass.AGREEMENT)
        assert result.text.endswith(".")


class TestSimulatedLearner:
    def test_deterministic(self):
        ontology = default_ontology()
        a = SimulatedLearner("x", ontology, seed=7)
        b = SimulatedLearner("x", ontology, seed=7)
        assert [a.next_utterance().text for _ in range(15)] == [
            b.next_utterance().text for _ in range(15)
        ]

    def test_profile_rates_respected(self):
        ontology = default_ontology()
        learner = SimulatedLearner(
            "x",
            ontology,
            profile=LearnerProfile(question_rate=1.0, syntax_error_rate=0.0,
                                   semantic_error_rate=0.0, chitchat_rate=0.0),
            seed=1,
        )
        assert all(learner.next_utterance().is_question for _ in range(10))

    def test_error_free_profile(self):
        ontology = default_ontology()
        learner = SimulatedLearner(
            "x",
            ontology,
            profile=LearnerProfile(question_rate=0.0, syntax_error_rate=0.0,
                                   semantic_error_rate=0.0, chitchat_rate=0.0),
            seed=2,
        )
        for _ in range(10):
            utterance = learner.next_utterance()
            assert utterance.is_clean


class TestClassroomSession:
    def test_session_runs_and_scores(self):
        system = ELearningSystem.with_defaults()
        session = ClassroomSession(system, learners=3, seed=1)
        result = session.run(rounds=3)
        assert len(result.supervised) == 9
        assert system.stats.messages >= 9

    def test_deterministic_sessions(self):
        first = ClassroomSession(ELearningSystem.with_defaults(), learners=3, seed=2).run(2)
        second = ClassroomSession(ELearningSystem.with_defaults(), learners=3, seed=2).run(2)
        assert [s.utterance.text for s in first.supervised] == [
            s.utterance.text for s in second.supervised
        ]
        assert [s.verdict for s in first.supervised] == [
            s.verdict for s in second.supervised
        ]

    def test_teacher_answers_recorded(self):
        system = ELearningSystem.with_defaults()
        profile = LearnerProfile(question_rate=1.0)
        session = ClassroomSession(system, learners=2, profile=profile, seed=3)
        result = session.run(rounds=3)
        assert result.questions_asked == 6
        assert result.teacher_answers > 0
