"""User Profile Database behaviour."""

from __future__ import annotations

from repro.profiles import UserProfile, UserProfileStore


class TestProfileStore:
    def test_get_or_create(self):
        store = UserProfileStore()
        profile = store.get_or_create("alice", now=5.0)
        assert profile.joined_at == 5.0
        assert store.get_or_create("alice").joined_at == 5.0  # not recreated
        assert len(store) == 1

    def test_get_missing(self):
        assert UserProfileStore().get("ghost") is None

    def test_record_activity_tallies(self):
        store = UserProfileStore()
        store.record_activity("bob", 1.0, syntax_error=True, mistake_kinds=("unlinked-word",))
        store.record_activity("bob", 2.0, semantic_error=True, topics=("stack",))
        store.record_activity("bob", 3.0, question=True, topics=("stack", "pop"))
        profile = store.get("bob")
        assert profile.messages == 3
        assert profile.syntax_errors == 1
        assert profile.semantic_errors == 1
        assert profile.questions == 1
        assert profile.last_active == 3.0
        assert profile.mistake_counts["unlinked-word"] == 1
        assert profile.topic_counts["stack"] == 2

    def test_error_rate(self):
        store = UserProfileStore()
        store.record_activity("x", 1.0, syntax_error=True)
        store.record_activity("x", 2.0)
        assert store.get("x").error_rate == 0.5

    def test_error_rate_empty(self):
        assert UserProfile(name="new").error_rate == 0.0

    def test_favourite_topics(self):
        store = UserProfileStore()
        store.record_activity("y", 1.0, topics=("stack", "stack", "queue"))
        assert store.get("y").favourite_topics(1) == ["stack"]

    def test_all_sorted(self):
        store = UserProfileStore()
        store.get_or_create("zed")
        store.get_or_create("amy")
        assert [p.name for p in store.all()] == ["amy", "zed"]

    def test_round_trip(self, tmp_path):
        store = UserProfileStore()
        store.record_activity("alice", 1.0, syntax_error=True,
                              mistake_kinds=("style",), topics=("heap",))
        path = tmp_path / "profiles.jsonl"
        store.save(path)
        loaded = UserProfileStore.load(path)
        profile = loaded.get("alice")
        assert profile is not None
        assert profile.syntax_errors == 1
        assert profile.mistake_counts["style"] == 1
        assert profile.topic_counts["heap"] == 1
