"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestParseCommand:
    def test_clean_sentence_exits_zero(self, capsys):
        assert main(["parse", "The stack is full."]) == 0
        out = capsys.readouterr().out
        assert "linkages:" in out
        assert "stack" in out

    def test_broken_sentence_exits_nonzero(self, capsys):
        assert main(["parse", "stack the full is."]) == 1

    def test_wall_flag(self, capsys):
        main(["parse", "The stack is full.", "--wall"])
        assert "<WALL>" in capsys.readouterr().out


class TestCheckCommand:
    def test_semantic_violation(self, capsys):
        assert main(["check", "I push the data into a tree."]) == 1
        out = capsys.readouterr().out
        assert "violation" in out
        assert "hint:" in out

    def test_clean(self, capsys):
        assert main(["check", "We push an element onto the stack."]) == 0
        assert "OK" in capsys.readouterr().out

    def test_negation_example(self, capsys):
        assert main(["check", "The tree doesn't have pop method."]) == 0


class TestAskCommand:
    def test_definition(self, capsys):
        assert main(["ask", "What is Stack?"]) == 0
        assert "Last In, First Out" in capsys.readouterr().out

    def test_unanswerable(self, capsys):
        assert main(["ask", "How is the weather?"]) == 1


class TestRepairCommand:
    def test_repair_output(self, capsys):
        assert main(["repair", "The stacks is full."]) == 0
        out = capsys.readouterr().out
        assert "The stack is full." in out

    def test_nothing_to_repair(self, capsys):
        assert main(["repair", "The stack is full."]) == 0
        assert "no repair needed" in capsys.readouterr().out


class TestOntologyCommand:
    def test_xml_dump(self, capsys):
        assert main(["ontology", "--format", "xml"]) == 0
        assert "KnowledgeBody" in capsys.readouterr().out

    def test_ddl_dump(self, capsys):
        assert main(["ontology", "--format", "ddl"]) == 0
        assert "CREATE CONCEPT 'stack' ID 3" in capsys.readouterr().out


class TestExportAndSimulate:
    def test_export_scorm(self, tmp_path, capsys):
        assert main(["export-scorm", str(tmp_path / "pkg")]) == 0
        assert (tmp_path / "pkg" / "imsmanifest.xml").exists()

    @pytest.mark.slow
    def test_simulate(self, capsys):
        assert main(["simulate", "--rounds", "2", "--learners", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "messages=" in out

    @pytest.mark.slow
    def test_simulate_durable_then_recover(self, tmp_path, capsys):
        data_dir = str(tmp_path / "state")
        assert main(["simulate", "--rounds", "1", "--learners", "2",
                     "--data-dir", data_dir, "--snapshot-every", "4"]) == 0
        capsys.readouterr()
        assert main(["recover", data_dir]) == 0
        out = capsys.readouterr().out
        assert "recovery: clean" in out
        assert "recovered state:" in out


class TestArgParsing:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])
