"""Sentence Pattern Classification: the paper's five patterns."""

from __future__ import annotations

import pytest

from repro.nlp import SentencePattern, classify


class TestPaperExamples:
    @pytest.mark.parametrize(
        "sentence, pattern",
        [
            ("I push the data into a tree.", SentencePattern.SIMPLE),
            ("The tree doesn't have pop method.", SentencePattern.NEGATIVE),
            ("Does stack have pop method?", SentencePattern.QUESTION),
            ("What is Stack?", SentencePattern.WH_QUESTION),
            ("Which data structure has the method push?", SentencePattern.WH_QUESTION),
            ("Push the data onto the stack.", SentencePattern.IMPERATIVE),
        ],
    )
    def test_pattern(self, sentence, pattern):
        assert classify(sentence).pattern == pattern


class TestQuestionDetection:
    def test_wh_sets_question_flag(self):
        analysis = classify("What is a queue?")
        assert analysis.is_question
        assert analysis.wh_word == "what"

    def test_aux_first_without_question_mark(self):
        assert classify("Does the stack overflow").is_question

    def test_question_mark_alone(self):
        assert classify("The stack is empty?").is_question

    def test_fronted_preposition_wh(self):
        analysis = classify("In which structure do we store keys?")
        assert analysis.pattern == SentencePattern.WH_QUESTION

    def test_how_why(self):
        assert classify("How do I implement a queue?").pattern == SentencePattern.WH_QUESTION
        assert classify("Why does the heap use an array?").pattern == SentencePattern.WH_QUESTION


class TestNegation:
    @pytest.mark.parametrize(
        "sentence",
        [
            "The tree doesn't have pop method.",
            "The stack does not overflow.",
            "We never use the array.",
            "It isn't balanced.",
            "You can't pop an empty stack.",
        ],
    )
    def test_negative_detected(self, sentence):
        assert classify(sentence).is_negative

    def test_negative_question_keeps_question_primary(self):
        analysis = classify("Doesn't the stack have a top?")
        assert analysis.pattern == SentencePattern.QUESTION
        assert analysis.is_negative

    def test_affirmative_property(self):
        assert classify("The stack is full.").affirmative
        assert not classify("The stack is not full.").affirmative


class TestImperatives:
    @pytest.mark.parametrize(
        "sentence",
        [
            "Push the data onto the stack.",
            "Insert the key.",
            "Please traverse the tree.",
            "Compare the two algorithms.",
        ],
    )
    def test_imperative(self, sentence):
        assert classify(sentence).pattern == SentencePattern.IMPERATIVE

    def test_subject_first_is_simple(self):
        assert classify("We push the data.").pattern == SentencePattern.SIMPLE


class TestEdgeCases:
    def test_empty(self):
        analysis = classify("")
        assert analysis.pattern == SentencePattern.SIMPLE
        assert not analysis.is_question

    def test_single_word(self):
        assert classify("Yes.").pattern == SentencePattern.SIMPLE

    def test_noun_phrase_with_question_mark(self):
        assert classify("The relations of stack?").pattern == SentencePattern.QUESTION
