"""Semantic Keywords Filter: ontology term extraction."""

from __future__ import annotations

import pytest

from repro.nlp import KeywordFilter, default_lemmatizer
from repro.ontology.domains import default_ontology


@pytest.fixture(scope="module")
def keyword_filter():
    return KeywordFilter(default_ontology())


class TestPaperExamples:
    def test_tree_pop_with_ids(self, keyword_filter):
        matches = keyword_filter.extract("The tree doesn't have pop method.")
        found = {(m.name, m.item_id) for m in matches}
        assert ("tree", 4) in found
        assert ("pop", 33) in found

    def test_push_tree(self, keyword_filter):
        names = [m.name for m in keyword_filter.extract("I push the data into a tree.")]
        assert names == ["push", "tree"]


class TestMultiWordTerms:
    def test_longest_match_wins(self, keyword_filter):
        matches = keyword_filter.extract("A binary search tree holds sorted keys.")
        names = [m.name for m in matches]
        assert "binary search tree" in names
        assert "tree" not in names
        assert "search" not in names

    def test_two_word_term(self, keyword_filter):
        names = [m.name for m in keyword_filter.extract("The hash table uses buckets.")]
        assert "hash table" in names
        assert "bucket" in names

    def test_span_positions(self, keyword_filter):
        (match,) = [
            m
            for m in keyword_filter.extract("Use a binary search tree here.")
            if m.name == "binary search tree"
        ]
        assert match.end - match.start == 3
        assert match.surface == "binary search tree"


class TestInflection:
    def test_plural_concept(self, keyword_filter):
        names = [m.name for m in keyword_filter.extract("The stacks are useful.")]
        assert "stack" in names

    def test_verb_past(self, keyword_filter):
        names = [m.name for m in keyword_filter.extract("We pushed the element.")]
        assert "push" in names
        assert "element" in names

    def test_gerund(self, keyword_filter):
        names = [m.name for m in keyword_filter.extract("Popping the stack is easy.")]
        assert "pop" in names

    def test_alias(self, keyword_filter):
        names = [m.name for m in keyword_filter.extract("The bst is balanced.")]
        assert "binary search tree" in names


class TestGrouping:
    def test_concepts_and_operations(self, keyword_filter):
        concepts, operations = keyword_filter.concepts_and_operations(
            "Does the stack have a pop method?"
        )
        assert [c.name for c in concepts] == ["stack"]
        assert [o.name for o in operations] == ["pop"]

    def test_extract_by_kind(self, keyword_filter):
        from repro.ontology import ItemKind

        grouped = keyword_filter.extract_by_kind("The stack is lifo.")
        assert [m.name for m in grouped[ItemKind.CONCEPT]] == ["stack"]
        assert [m.name for m in grouped[ItemKind.PROPERTY]] == ["lifo"]

    def test_no_keywords(self, keyword_filter):
        assert keyword_filter.extract("The weather is nice today.") == []


class TestLemmatizer:
    def test_known_forms(self):
        lemmatizer = default_lemmatizer()
        assert lemmatizer.lemma("pushes") == "push"
        assert lemmatizer.lemma("pushed") == "push"
        assert lemmatizer.lemma("stacks") == "stack"
        assert lemmatizer.lemma("children") == "child"
        assert lemmatizer.lemma("held") == "hold"

    def test_unknown_unchanged(self):
        lemmatizer = default_lemmatizer()
        assert lemmatizer.lemma("zorkmid") == "zorkmid"

    def test_case_insensitive(self):
        lemmatizer = default_lemmatizer()
        assert lemmatizer.lemma("Pushes") == "push"

    def test_lemmas_tuple(self):
        lemmatizer = default_lemmatizer()
        assert lemmatizer.lemmas(("stacks", "hold")) == ("stack", "hold")

    def test_table_is_populated(self):
        assert len(default_lemmatizer()) > 200
