"""Standards export: SCORM content package + QTI assessment."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.ontology.domains import default_ontology
from repro.qa import QASystem
from repro.standards import (
    MANIFEST_NAME,
    build_assessment,
    build_manifest,
    write_assessment,
    write_package,
)

_NS = {"cp": "http://www.imsproject.org/xsd/imscp_rootv1p1p2"}


class TestScormManifest:
    def test_manifest_is_valid_xml(self):
        root = ET.fromstring(build_manifest(default_ontology()))
        assert root.tag.endswith("manifest")

    def test_taxonomy_nesting(self):
        root = ET.fromstring(build_manifest(default_ontology()))
        organization = root.find(".//cp:organization", _NS)
        # 'data structure' is a root item; 'stack' nests under 'list'
        # which nests under 'data structure'.
        top = organization.find("cp:item[@identifier='item_1']", _NS)
        assert top is not None
        nested = top.find(".//cp:item[@identifier='item_3']", _NS)
        assert nested is not None

    def test_every_concept_has_a_resource(self):
        ontology = default_ontology()
        root = ET.fromstring(build_manifest(ontology))
        resources = root.findall(".//cp:resource", _NS)
        from repro.ontology.model import ItemKind

        assert len(resources) == len(ontology.items_of_kind(ItemKind.CONCEPT))

    def test_package_writes_files(self, tmp_path):
        package = write_package(default_ontology(), tmp_path / "pkg")
        assert (package / MANIFEST_NAME).exists()
        pages = list(package.glob("sco_*.html"))
        assert len(pages) > 20

    def test_stack_page_contains_paper_definition(self, tmp_path):
        package = write_package(default_ontology(), tmp_path / "pkg")
        page = (package / "sco_003_stack.html").read_text(encoding="utf-8")
        assert "Last In, First Out" in page
        assert "push" in page and "pop" in page
        assert "<pre>" in page  # the type="c" algorithm attachment


@pytest.fixture()
def populated_faq():
    qa = QASystem(default_ontology())
    for question in [
        "What is Stack?",
        "What is a queue?",
        "What is a heap?",
        "Does stack have pop method?",
        "Which structure has the push operation?",
    ]:
        qa.answer(question)
    return qa.faq


class TestQtiAssessment:
    def test_valid_xml(self, populated_faq):
        root = ET.fromstring(build_assessment(populated_faq))
        assert root.tag == "questestinterop"

    def test_items_have_correct_and_distractors(self, populated_faq):
        root = ET.fromstring(build_assessment(populated_faq))
        items = root.findall(".//item")
        assert items
        for item in items:
            labels = item.findall(".//response_label")
            idents = [label.get("ident") for label in labels]
            assert "correct" in idents
            assert len(idents) >= 2

    def test_distractors_prefer_same_family(self, populated_faq):
        root = ET.fromstring(build_assessment(populated_faq))
        first = root.find(".//item")
        texts = [el.text for el in first.findall(".//mattext")]
        # A definition question should be distracted by other definitions.
        definition_answers = sum(1 for t in texts[1:] if t and " is a " in t)
        assert definition_answers >= 2

    def test_max_items_cap(self, populated_faq):
        xml = build_assessment(populated_faq, max_items=2)
        assert xml.count("<item ") == 2

    def test_write_assessment(self, populated_faq, tmp_path):
        path = write_assessment(populated_faq, tmp_path / "quiz.xml")
        assert path.exists()
        assert "questestinterop" in path.read_text(encoding="utf-8")

    def test_empty_faq_yields_empty_assessment(self):
        from repro.qa import FAQDatabase

        xml = build_assessment(FAQDatabase())
        assert "<item " not in xml
