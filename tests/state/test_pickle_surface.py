"""Pickle-surface property suite for the ``process`` runtime's wire forms.

The process mode ships replicas, deltas and construction specs across a
process boundary; everything it ships must (a) round-trip through pickle
with its *data* intact, and (b) provably exclude what cannot or must not
cross — locks, memo caches, interned parse tables.  These tests pin
that contract for every :class:`~repro.state.StoreReplica`
implementation, for the :class:`~repro.state.ReplicaDelta` wire form,
for the dictionary/parse-cache exclusions, and for the
:class:`~repro.chatroom.procworker.PipelineProcessSpec` a child process
rebuilds its pipeline twin from.
"""

from __future__ import annotations

import copy
import pickle
import threading

import pytest

from repro.corpus.store import LearnerCorpus
from repro.linkgrammar.cache import ParseCacheStore
from repro.linkgrammar.lexicon import default_dictionary
from repro.profiles.store import UserProfileStore
from repro.qa.engine import QASystem
from repro.qa.faq import FAQDatabase
from repro.state import ReplicaDelta, delta_of

from test_mergeable import SENTENCES, make_record


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def seeded_corpus_replica():
    corpus = LearnerCorpus()
    corpus.add(make_record(0, "the stack stores data", keywords=("stack",)))
    replica = corpus.fork()
    for seq, (text, verdict, keywords) in enumerate(SENTENCES[:3], start=1):
        replica.begin_origin(seq)
        replica.add(make_record(replica.next_id(), text, verdict, keywords))
    return corpus, replica


class TestCorpusReplicaRoundTrip:
    def test_pending_and_base_survive(self):
        corpus, replica = seeded_corpus_replica()
        clone = roundtrip(replica)
        assert clone.base_len == replica.base_len
        assert len(clone.pending) == len(replica.pending)
        assert [origin for origin, _, _ in clone.pending] == [
            origin for origin, _, _ in replica.pending
        ]
        # Frozen reads still delegate to the (shipped) base snapshot.
        assert clone.records()[0].text == "the stack stores data"

    def test_roundtripped_replica_merges_identically(self):
        corpus, replica = seeded_corpus_replica()
        shipped = roundtrip(replica)
        merged_original = copy.deepcopy(corpus)
        merged_original.merge(replica)
        # The shipped replica carries its own base copy; merge into it.
        shipped.base.merge(shipped)
        assert shipped.base.snapshot() == merged_original.snapshot()


class TestProfileReplicaRoundTrip:
    def test_roundtripped_replica_merges_identically(self):
        store = UserProfileStore()
        store.record_activity("ann", 0.0, question=True, topics=("stack",))
        replica = store.fork()
        replica.begin_origin(1)
        replica.record_activity("bob", 1.0, syntax_error=True, mistake_kinds=("style",))
        replica.begin_origin(2)
        replica.record_activity("ann", 2.0, semantic_error=True, topics=("tree",))
        shipped = roundtrip(replica)
        reference = copy.deepcopy(store)
        reference.merge(replica)
        shipped.base.merge(shipped)
        assert shipped.base.snapshot() == reference.snapshot()


class TestFAQReplicaRoundTrip:
    def test_roundtripped_replica_merges_identically(self):
        qa = QASystem(default_ontology_cached())
        faq = FAQDatabase()
        replica = faq.fork()
        replica.begin_origin(5)
        match = qa.resolve("What is a stack?").match
        replica.record(match, "What is a stack?", "A stack is a LIFO.", now=5.0)
        shipped = roundtrip(replica)
        reference = copy.deepcopy(faq)
        reference.merge(replica)
        shipped.base.merge(shipped)
        assert shipped.base.snapshot() == reference.snapshot()


_ONTOLOGY = None


def default_ontology_cached():
    global _ONTOLOGY
    if _ONTOLOGY is None:
        from repro.ontology.domains import default_ontology

        _ONTOLOGY = default_ontology()
    return _ONTOLOGY


class TestReplicaDeltaWireForm:
    """delta_of(replica) is a complete stand-in on the merge path."""

    def test_delta_merge_equals_replica_merge(self):
        corpus, replica = seeded_corpus_replica()
        delta = roundtrip(delta_of(replica))  # ships like the real wire
        assert isinstance(delta, ReplicaDelta)
        assert len(delta) == len(replica.pending)
        via_replica = copy.deepcopy(corpus)
        via_replica.merge(replica)
        corpus.merge(delta)
        assert corpus.snapshot() == via_replica.snapshot()

    def test_delta_pending_is_shallow_copied(self):
        _, replica = seeded_corpus_replica()
        delta = delta_of(replica)
        replica.rebase()  # empties the replica's own buffer...
        assert len(delta) == 3  # ...but not the already-extracted delta


class TestDictionaryExclusions:
    """The dictionary ships formulas, never derived parser state."""

    def test_tables_cache_and_lock_are_excluded(self):
        dictionary = default_dictionary()
        dictionary.tables  # force the interned tables to exist
        assert dictionary._tables is not None
        clone = roundtrip(dictionary)
        assert clone._tables is None
        assert clone._tables_version == -1
        assert clone._shared_cache is None
        # A fresh, unlocked lock was re-armed child-side.
        assert isinstance(clone._tables_lock, type(threading.Lock()))
        assert clone._tables_lock.acquire(blocking=False)
        clone._tables_lock.release()

    def test_clone_rebuilds_tables_lazily_and_identically(self):
        dictionary = default_dictionary()
        clone = roundtrip(dictionary)
        assert len(clone) == len(dictionary)
        theirs, ours = clone.tables, dictionary.tables
        assert [str(c) for c in theirs.connectors] == [
            str(c) for c in ours.connectors
        ]
        assert theirs.match_right == ours.match_right


class TestParseCacheExclusion:
    def test_cache_ships_empty_with_its_policy(self):
        cache = ParseCacheStore(max_entries=7)
        cache.put_parse("k", "v")
        assert cache.get_parse("k") == "v"
        clone = roundtrip(cache)
        assert clone.max_entries == 7
        assert clone.get_parse("k") is None  # memo entries never cross


class TestPipelineProcessSpec:
    def test_spec_roundtrips_and_builds_a_working_twin(self):
        from repro.chatroom.messages import ChatMessage, MessageKind
        from repro.chatroom.procworker import PipelineProcessSpec
        from repro.chatroom.shard import SupervisionItem, dispatch
        from repro.core.system import ELearningSystem, SystemConfig
        from repro.resilience.controller import ResilienceController

        system = ELearningSystem.with_defaults(SystemConfig(runtime_mode="process"))
        spec = roundtrip(system.pipeline.process_spec())
        assert isinstance(spec, PipelineProcessSpec)
        # The shipped dictionary provably lost its derived parser state.
        assert spec.dictionary._tables is None
        assert spec.dictionary._shared_cache is None
        unit = spec.build(ResilienceController())
        message = ChatMessage(seq=1, room="r", sender="kid",
                              kind=MessageKind.USER,
                              text="What is Stack?", timestamp=0.0)
        dispatch(unit.pipeline, None, SupervisionItem(message, None), {})
        delta = unit.extract_delta()
        # The question hit the FAQ/corpus surfaces of the twin's
        # replicas: the extracted delta carries buffered writes and the
        # outbox carries the QA reply.
        assert len(delta) > 0
        replies = unit.stores.take_replies()
        assert replies and replies[0][0] == 1  # keyed by origin seq
        system.close()
