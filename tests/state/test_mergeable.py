"""Merge-determinism property suite for the shard-local stores.

The ``repro.state`` contract: ``fork()`` gives a worker a replica whose
reads are frozen at the fork snapshot and whose writes are buffered with
their origin (global message seq); ``merge()`` folds replicas back such
that *any* merge order reproduces the store a sequential run would have
built.  These tests exercise the three implementations directly —
corpus, profiles, FAQ — including the inverted-index guarantee: merged
postings must equal single-store postings.
"""

from __future__ import annotations

import itertools

import pytest

from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.store import LearnerCorpus
from repro.profiles.store import UserProfileStore
from repro.qa.engine import QASystem
from repro.qa.faq import FAQDatabase
from repro.state import MergeableStore, snapshots_equal


def make_record(
    record_id: int, text: str, verdict=Correctness.CORRECT, keywords=(), ts: float = 0.0
):
    return CorpusRecord(
        record_id=record_id,
        user="kid",
        room="r",
        text=text,
        timestamp=ts,
        pattern="SVO",
        verdict=verdict,
        keywords=list(keywords),
    )


SENTENCES = [
    ("the stack holds data", Correctness.CORRECT, ("stack",)),
    ("the queue holds data", Correctness.CORRECT, ("queue",)),
    ("push stores an element", Correctness.CORRECT, ("push",)),
    ("tree the data holds", Correctness.SYNTAX_ERROR, ("tree",)),
    ("the stack has pop", Correctness.CORRECT, ("stack", "pop")),
    ("a queue supports enqueue", Correctness.CORRECT, ("queue", "enqueue")),
]


class TestProtocol:
    def test_stores_satisfy_mergeable_protocol(self):
        for store in (LearnerCorpus(), UserProfileStore(), FAQDatabase()):
            assert isinstance(store, MergeableStore)


class TestCorpusMerge:
    def seeded(self) -> LearnerCorpus:
        corpus = LearnerCorpus()
        corpus.add(make_record(0, "the stack stores data", keywords=("stack",)))
        corpus.add(make_record(1, "a tree has nodes", keywords=("tree",)))
        return corpus

    def sequential(self) -> LearnerCorpus:
        """The reference: one store fed every record in origin order."""
        corpus = self.seeded()
        for seq, (text, verdict, keywords) in enumerate(SENTENCES):
            corpus.add(make_record(corpus.next_id(), text, verdict, keywords, ts=float(seq)))
        return corpus

    def replicated(self, order: tuple[int, ...], shards: int = 3) -> LearnerCorpus:
        """The same records, written via ``shards`` replicas (sentence i
        goes to shard ``i % shards``), merged in ``order``."""
        corpus = self.seeded()
        replicas = [corpus.fork() for _ in range(shards)]
        for seq, (text, verdict, keywords) in enumerate(SENTENCES):
            replica = replicas[seq % shards]
            replica.begin_origin(seq)
            replica.add(make_record(replica.next_id(), text, verdict, keywords, ts=float(seq)))
        for index in order:
            corpus.merge(replicas[index])
        for replica in replicas:
            replica.rebase()
        return corpus

    def test_merge_reproduces_sequential_store(self):
        assert snapshots_equal(self.replicated((0, 1, 2)), self.sequential())

    def test_merge_order_is_irrelevant(self):
        reference = self.replicated((0, 1, 2)).snapshot()
        for order in itertools.permutations(range(3)):
            assert self.replicated(order).snapshot() == reference

    def test_merged_postings_equal_single_store_postings(self):
        merged = self.replicated((2, 0, 1))
        single = self.sequential()
        tokens = {token for text, _, _ in SENTENCES for token in text.split()}
        for token in tokens:
            assert merged.token_positions(token) == single.token_positions(token), token
        for keyword in ("stack", "queue", "tree", "push", "pop", "enqueue"):
            assert merged.keyword_positions(keyword) == single.keyword_positions(keyword)
        for verdict in Correctness:
            assert [r.to_dict() for r in merged.by_verdict(verdict)] == [
                r.to_dict() for r in single.by_verdict(verdict)
            ]
        for position in range(len(single.records())):
            assert merged.token_set(position) == single.token_set(position)
            assert merged.keyword_set(position) == single.keyword_set(position)

    def test_record_ids_renumbered_to_final_positions(self):
        merged = self.replicated((1, 2, 0))
        assert [r.record_id for r in merged.records()] == list(range(len(merged)))

    def test_replica_reads_are_frozen_at_fork(self):
        corpus = self.seeded()
        replica = corpus.fork()
        replica.begin_origin(10)
        replica.add(make_record(replica.next_id(), "the queue holds data"))
        # Local appends are invisible to reads until the merge...
        assert len(corpus.records()) == 2
        assert replica.token_positions("queue") == ()
        # ...but provisional ids keep advancing.
        assert replica.next_id() == 3

    def test_rebase_resnapshots_for_the_next_barrier(self):
        corpus = self.seeded()
        replica_a, replica_b = corpus.fork(), corpus.fork()
        replica_a.begin_origin(5)
        replica_a.add(make_record(replica_a.next_id(), "push stores an element"))
        replica_b.begin_origin(4)
        replica_b.add(make_record(replica_b.next_id(), "the stack has pop"))
        corpus.merge(replica_a)
        corpus.merge(replica_b)
        replica_a.rebase()
        replica_b.rebase()
        # Seq 4 interleaved before seq 5 despite merging second.
        assert [r.text for r in corpus.records()[2:]] == [
            "the stack has pop",
            "push stores an element",
        ]
        # Next barrier: appends land after the merged records.
        replica_a.begin_origin(9)
        replica_a.add(make_record(replica_a.next_id(), "a queue supports enqueue"))
        corpus.merge(replica_a)
        replica_a.rebase()
        assert corpus.records()[-1].text == "a queue supports enqueue"
        assert [r.record_id for r in corpus.records()] == list(range(5))

    def test_stale_replica_rejected(self):
        corpus = self.seeded()
        replica = corpus.fork()
        smaller = LearnerCorpus()
        with pytest.raises(ValueError):
            smaller.merge(replica)


class TestProfileMerge:
    def activities(self):
        # (seq, user, kwargs) — two shards' worth of interleaved traffic.
        return [
            ("ann", dict(syntax_error=True, mistake_kinds=("style",), topics=("stack",))),
            ("bob", dict(question=True, topics=("queue",))),
            ("ann", dict(semantic_error=True, topics=("stack", "tree"))),
            ("cat", dict()),
            ("bob", dict(syntax_error=True, mistake_kinds=("no-parse",))),
        ]

    def sequential(self) -> UserProfileStore:
        store = UserProfileStore()
        for now, (user, kwargs) in enumerate(self.activities()):
            store.record_activity(user, float(now), **kwargs)
        return store

    def replicated(self, order) -> UserProfileStore:
        store = UserProfileStore()
        replicas = [store.fork() for _ in range(2)]
        for now, (user, kwargs) in enumerate(self.activities()):
            replica = replicas[now % 2]
            replica.begin_origin(now)
            replica.record_activity(user, float(now), **kwargs)
        for index in order:
            store.merge(replicas[index])
        for replica in replicas:
            replica.rebase()
        return store

    def test_merge_matches_sequential_any_order(self):
        reference = self.sequential().snapshot()
        assert self.replicated((0, 1)).snapshot() == reference
        assert self.replicated((1, 0)).snapshot() == reference

    def test_replica_activity_invisible_until_merge(self):
        store = UserProfileStore()
        replica = store.fork()
        replica.record_activity("ann", 1.0, question=True)
        assert store.get("ann") is None
        assert replica.get("ann") is None  # reads see the snapshot
        store.merge(replica)
        replica.rebase()
        assert store.get("ann").questions == 1


class TestFAQMerge:
    @pytest.fixture(scope="class")
    def qa(self):
        from repro.ontology.domains import default_ontology

        return QASystem(default_ontology())

    def matches(self, qa):
        return {
            "stack": qa.resolve("What is a stack?").match,
            "stack2": qa.resolve("what is Stack").match,
            "queue": qa.resolve("What is a queue?").match,
        }

    def test_counts_sum_and_earliest_origin_wins_representative(self, qa):
        matches = self.matches(qa)
        faq = FAQDatabase()
        late, early = faq.fork(), faq.fork()
        late.begin_origin(7)
        late.record(matches["stack"], "What is a stack?", "A stack is a LIFO.", now=7.0)
        late.record(matches["queue"], "What is a queue?", "A queue is a FIFO.", now=7.0)
        early.begin_origin(3)
        early.record(matches["stack2"], "what is Stack", "A stack is a LIFO.", now=3.0)
        # Merge the *late* replica first: the early replica must still
        # win the representative surface form and first_asked.
        faq.merge(late)
        faq.merge(early)
        late.rebase()
        early.rebase()
        stack_pair = faq.lookup(matches["stack"])
        assert stack_pair.count == 2
        assert stack_pair.question == "what is Stack"
        assert stack_pair.first_asked == 3.0
        assert stack_pair.last_asked == 7.0
        assert faq.lookup(matches["queue"]).count == 1

    def test_merge_order_invariance(self, qa):
        matches = self.matches(qa)

        def build(order):
            faq = FAQDatabase()
            replicas = [faq.fork() for _ in range(3)]
            for seq, key in enumerate(["stack", "queue", "stack2", "queue", "stack"]):
                replica = replicas[seq % 3]
                replica.begin_origin(seq)
                replica.record(matches[key], f"q{seq}", "answer", now=float(seq))
            for index in order:
                faq.merge(replicas[index])
            return faq.snapshot()

        reference = build((0, 1, 2))
        for order in itertools.permutations(range(3)):
            assert build(order) == reference

    def test_hit_corrections_count_cross_shard_duplicates(self, qa):
        matches = self.matches(qa)
        faq = FAQDatabase()
        replicas = [faq.fork() for _ in range(3)]
        for seq, replica in enumerate(replicas):
            replica.begin_origin(seq)
            replica.record(matches["stack"], "What is a stack?", "A stack is a LIFO.", now=1.0)
        # Three shards each missed the barrier-born question once; a
        # sequential run misses once and hits twice.
        corrections = [faq.merge(replica) for replica in replicas]
        assert corrections == [0, 1, 1]
        # A later barrier sees the pair in the base: no corrections.
        for replica in replicas:
            replica.rebase()
        replicas[0].begin_origin(10)
        replicas[0].record(matches["stack"], "What is a stack?", "A stack is a LIFO.", now=2.0)
        assert faq.merge(replicas[0]) == 0
        assert faq.lookup(matches["stack"]).count == 4

    def test_shard_local_lookup_sees_own_new_pairs_only(self, qa):
        matches = self.matches(qa)
        faq = FAQDatabase()
        mine, other = faq.fork(), faq.fork()
        mine.begin_origin(0)
        mine.record(matches["stack"], "What is a stack?", "A stack is a LIFO.", now=0.0)
        assert mine.lookup(matches["stack"]) is not None
        assert other.lookup(matches["stack"]) is None
        assert faq.lookup(matches["stack"]) is None


class TestReplicaDeltaEquivalence:
    """The ``ReplicaDelta`` wire form is a complete merge stand-in.

    Every base-store ``merge()`` reads exactly ``replica.base_len`` and
    ``replica.pending`` — the process runtime relies on this to ship a
    two-field plain-data delta instead of the replica object.  Pin the
    equivalence for all three implementations.
    """

    def test_corpus_delta_merge_equals_replica_merge(self):
        from repro.state import delta_of

        reference, via_delta = LearnerCorpus(), LearnerCorpus()
        for corpus in (reference, via_delta):
            corpus.add(make_record(0, "the stack stores data", keywords=("stack",)))
        replica = via_delta.fork()
        twin = reference.fork()
        for seq, (text, verdict, keywords) in enumerate(SENTENCES[:4], start=1):
            for target in (replica, twin):
                target.begin_origin(seq)
                target.add(make_record(target.next_id(), text, verdict, keywords))
        reference.merge(twin)
        via_delta.merge(delta_of(replica))
        assert snapshots_equal(via_delta, reference)

    def test_profile_delta_merge_equals_replica_merge(self):
        from repro.state import delta_of

        reference, via_delta = UserProfileStore(), UserProfileStore()
        replica, twin = via_delta.fork(), reference.fork()
        for seq, target in ((1, replica), (1, twin), (2, replica), (2, twin)):
            target.begin_origin(seq)
            target.record_activity("ann", float(seq), question=True, topics=("stack",))
        reference.merge(twin)
        via_delta.merge(delta_of(replica))
        assert snapshots_equal(via_delta, reference)

    def test_faq_delta_merge_equals_replica_merge(self):
        from repro.ontology.domains import default_ontology
        from repro.state import delta_of

        match = QASystem(default_ontology()).resolve("What is a stack?").match
        reference, via_delta = FAQDatabase(), FAQDatabase()
        replica, twin = via_delta.fork(), reference.fork()
        for target in (replica, twin):
            target.begin_origin(3)
            target.record(match, "What is a stack?", "A stack is a LIFO.", now=3.0)
        corrections_twin = reference.merge(twin)
        corrections_delta = via_delta.merge(delta_of(replica))
        assert corrections_delta == corrections_twin
        assert snapshots_equal(via_delta, reference)

    def test_delta_reports_pending_size(self):
        from repro.state import ReplicaDelta, delta_of

        corpus = LearnerCorpus()
        replica = corpus.fork()
        replica.begin_origin(1)
        replica.add(make_record(0, "the stack stores data"))
        delta = delta_of(replica)
        assert isinstance(delta, ReplicaDelta)
        assert len(delta) == 1
        assert delta.base_len == 0


class TestProtocolDeclarationsAreInert:
    """The @runtime_checkable protocols declare shape only: invoking a
    declared body directly must be a behaviourless no-op.  (This also
    pins that no default implementation ever sneaks into the protocol —
    stores must own every merge semantic themselves.)"""

    def test_store_replica_declared_bodies(self):
        corpus = LearnerCorpus()
        replica = corpus.fork()
        from repro.state import StoreReplica

        assert StoreReplica.base_len.fget(replica) is None
        assert StoreReplica.begin_origin(replica, 1) is None
        assert StoreReplica.rebase(replica) is None
        # The protocol body ran, not the implementation: the replica's
        # own state is untouched.
        assert replica.base_len == 0
        assert replica.pending == []

    def test_mergeable_store_declared_bodies(self):
        corpus = LearnerCorpus()
        replica = corpus.fork()
        assert MergeableStore.fork(corpus) is None
        assert MergeableStore.merge(corpus, replica) is None
        assert MergeableStore.snapshot(corpus) is None
        assert len(corpus) == 0  # nothing actually merged
