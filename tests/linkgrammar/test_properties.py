"""Property-based tests on parser invariants.

The central invariants, checked over randomly composed word sequences:

* every enumerated linkage satisfies all four meta-rules;
* ``count_at(k)`` equals the number of linkages enumerated at ``k`` nulls
  (counting and extraction mirror the same recursion);
* the chosen null level is minimal: no linkages exist at lower levels;
* parses are deterministic.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.lexicon.toy import toy_dictionary

_TOY_WORDS = ["a", "the", "cat", "mouse", "john", "ran", "chased"]

_toy_parser = Parser(toy_dictionary(), ParseOptions(use_wall=False, max_linkages=4096))

word_sequences = st.lists(st.sampled_from(_TOY_WORDS), min_size=1, max_size=6)


@given(word_sequences)
@settings(max_examples=200, deadline=None)
def test_all_linkages_satisfy_meta_rules(words):
    result = _toy_parser.parse(" ".join(words))
    for linkage in result.linkages:
        assert linkage.validate() == []


@given(word_sequences)
@settings(max_examples=200, deadline=None)
def test_count_matches_enumeration(words):
    sentence = " ".join(words)
    result = _toy_parser.parse(sentence)
    if result.linkages:
        session_count = _toy_parser.count_linkages(sentence, nulls=result.null_count)
        assert session_count == result.total_count
        assert len(result.linkages) == result.total_count


@given(word_sequences)
@settings(max_examples=100, deadline=None)
def test_null_level_is_minimal(words):
    sentence = " ".join(words)
    result = _toy_parser.parse(sentence)
    for lower in range(result.null_count):
        assert _toy_parser.count_linkages(sentence, nulls=lower) == 0


@given(word_sequences)
@settings(max_examples=50, deadline=None)
def test_determinism(words):
    sentence = " ".join(words)
    first = _toy_parser.parse(sentence)
    second = _toy_parser.parse(sentence)
    assert [l.link_summary() for l in first.linkages] == [
        l.link_summary() for l in second.linkages
    ]


@given(word_sequences)
@settings(max_examples=100, deadline=None)
def test_null_words_consistent_with_null_count(words):
    result = _toy_parser.parse(" ".join(words))
    for linkage in result.linkages:
        assert len(linkage.null_words) == result.null_count
        # Null words carry no links.
        for index in linkage.null_words:
            assert linkage.links_at(index) == []


@given(word_sequences)
@settings(max_examples=100, deadline=None)
def test_linked_words_use_exactly_one_disjunct(words):
    result = _toy_parser.parse(" ".join(words))
    for linkage in result.linkages:
        for index, word in enumerate(linkage.words):
            if index in linkage.null_words:
                assert linkage.disjuncts[index] is None
            else:
                assert linkage.disjuncts[index] is not None
