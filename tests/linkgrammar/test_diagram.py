"""ASCII linkage diagrams (Figure 2 style)."""

from __future__ import annotations

from repro.linkgrammar.diagram import render


class TestRender:
    def test_figure2_diagram(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        text = render(result.best)
        lines = text.splitlines()
        assert lines[-1].split() == ["the", "cat", "chased", "a", "mouse"]
        assert "O" in text
        assert "D" in text
        assert "S" in text
        assert "+" in text and "-" in text

    def test_wall_hidden_by_default(self, full_parser):
        result = full_parser.parse("The stack is full.")
        text = render(result.best)
        assert "<WALL>" not in text

    def test_wall_shown_on_request(self, full_parser):
        result = full_parser.parse("The stack is full.")
        text = render(result.best, show_wall=True)
        assert "<WALL>" in text

    def test_null_words_marked(self, full_parser):
        result = full_parser.parse("The trees is balanced.")
        assert result.null_count > 0
        text = render(result.best)
        assert "^" in text

    def test_arcs_do_not_overlap_words(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        lines = render(result.best).splitlines()
        # The word row must be exactly the sentence, no arc characters.
        assert all(ch not in lines[-1] for ch in "+|")

    def test_empty_linkage(self, toy_parser):
        result = toy_parser.parse("")
        text = render(result.best) if result.best else "(empty)"
        assert text == "(empty)"
