"""Formula-to-disjunct expansion (the paper's 'disjunctive form')."""

from __future__ import annotations

from repro.linkgrammar.connector import Connector
from repro.linkgrammar.disjunct import Disjunct, expand
from repro.linkgrammar.formula import parse_formula


def _expand(text: str) -> tuple[Disjunct, ...]:
    return expand(parse_formula(text))


class TestExpansion:
    def test_single_connector(self):
        (d,) = _expand("S+")
        assert d.left == ()
        assert d.right == (Connector.parse("S+"),)

    def test_and_keeps_both(self):
        (d,) = _expand("D- & S+")
        assert d.left == (Connector.parse("D-"),)
        assert d.right == (Connector.parse("S+"),)

    def test_or_enumerates(self):
        ds = _expand("S+ or O-")
        assert len(ds) == 2

    def test_optional_doubles(self):
        ds = _expand("{A-} & S+")
        assert len(ds) == 2
        sizes = sorted(d.connector_count for d in ds)
        assert sizes == [1, 2]

    def test_paper_noun_formula(self):
        # cat/mouse from Fig. 1: D- & (S+ or O-) gives two disjuncts.
        ds = _expand("D- & (S+ or O-)")
        assert len(ds) == 2
        as_subject = next(d for d in ds if d.right)
        as_object = next(d for d in ds if not d.right)
        assert as_subject.left == (Connector.parse("D-"),)
        assert as_subject.right == (Connector.parse("S+"),)
        # Object reading: O- is farther than D-, so it comes first
        # in the farthest-first storage order.
        assert as_object.left == (Connector.parse("O-"), Connector.parse("D-"))

    def test_left_connectors_farthest_first(self):
        # Formula order is near-to-far; storage is farthest-first.
        (d,) = _expand("A- & D- & O-")
        labels = [c.label for c in d.left]
        assert labels == ["O", "D", "A"]

    def test_right_connectors_farthest_first(self):
        (d,) = _expand("O+ & K+")
        labels = [c.label for c in d.right]
        assert labels == ["K", "O"]

    def test_formula_order_reconstruction(self):
        (d,) = _expand("A- & D- & S+ & O+")
        assert [c.label for c in d.in_formula_order()] == ["A", "D", "S", "O"]

    def test_cost_accumulates(self):
        ds = _expand("[O-] & [[S+]]")
        assert len(ds) == 1
        assert ds[0].cost == 3

    def test_cost_only_on_taken_branch(self):
        ds = _expand("S+ or [O-]")
        costs = {tuple(c.label for c in d.left + d.right): d.cost for d in ds}
        assert costs[("S",)] == 0
        assert costs[("O",)] == 1

    def test_optional_empty_branch_is_free(self):
        ds = _expand("(Ds- or [()])")
        by_size = {d.connector_count: d.cost for d in ds}
        assert by_size[1] == 0  # determiner present
        assert by_size[0] == 1  # omitted at a cost

    def test_duplicate_satisfactions_keep_cheapest(self):
        ds = _expand("(S+ or [S+])")
        assert len(ds) == 1
        assert ds[0].cost == 0

    def test_deterministic_order(self):
        first = _expand("{A-} & {D-} & (S+ or O-)")
        second = _expand("{A-} & {D-} & (S+ or O-)")
        assert first == second

    def test_expansion_size(self):
        ds = _expand("{A-} & {B-} & {C-} & (S+ or O- or J-)")
        assert len(ds) == 2 * 2 * 2 * 3

    def test_str_form(self):
        (d,) = _expand("D- & S+")
        assert str(d) == "((D-)(S+))"
