"""Parser behaviour on the full English + domain dictionary.

Every sentence quoted in the paper must behave as the paper assumes:
the semantically-odd ones still parse (they are *syntactically* fine),
questions parse as questions, and learner-style errors surface as null
or unknown words rather than hard failures.
"""

from __future__ import annotations

import pytest

PAPER_SENTENCES = [
    "The cat chased a mouse.",
    "The car is drinking water.",
    "The data is pushed in this heap.",
    "I push the data into a tree.",
    "The tree doesn't have pop method.",
    "What is Stack?",
    "Which data structure has the method push?",
    "Does stack have pop method?",
]


class TestPaperSentences:
    @pytest.mark.parametrize("sentence", PAPER_SENTENCES)
    def test_parses_without_nulls(self, full_parser, sentence):
        result = full_parser.parse(sentence)
        assert result.null_count == 0, sentence
        assert result.best is not None

    @pytest.mark.parametrize("sentence", PAPER_SENTENCES)
    def test_linkages_satisfy_meta_rules(self, full_parser, sentence):
        result = full_parser.parse(sentence)
        for linkage in result.linkages:
            assert linkage.validate() == [], sentence

    def test_figure2_links_present(self, full_parser):
        result = full_parser.parse("The cat chased a mouse.")
        summary = result.best.link_summary()
        for fragment in ["Ds(the,cat)", "Ss(cat,chased)", "O(chased,mouse)", "Ds(a,mouse)"]:
            assert fragment in summary

    def test_missing_article_costs_more(self, full_parser):
        with_article = full_parser.parse("The tree doesn't have a pop method.")
        without_article = full_parser.parse("The tree doesn't have pop method.")
        assert with_article.null_count == 0
        assert without_article.null_count == 0
        assert with_article.best.cost < without_article.best.cost


class TestDeclaratives:
    @pytest.mark.parametrize(
        "sentence",
        [
            "A stack is a data structure.",
            "The stack holds the elements.",
            "We push an element onto the stack.",
            "The queue supports the enqueue operation.",
            "A binary tree has two children.",
            "The algorithm sorts the array.",
            "The root points to the left subtree.",
            "A hash table stores the keys in buckets.",
            "The list is empty.",
            "The heap grows quickly.",
            "Insertion is a basic operation.",
            "The top of the stack holds the last element.",
        ],
    )
    def test_parse_clean(self, full_parser, sentence):
        result = full_parser.parse(sentence)
        assert result.null_count == 0, sentence

    def test_subject_verb_agreement_enforced(self, full_parser):
        good = full_parser.parse("The stack holds the data.")
        bad = full_parser.parse("The stacks holds the data.")
        assert good.null_count == 0
        assert bad.null_count > 0

    def test_plural_agreement(self, full_parser):
        good = full_parser.parse("The stacks hold the data.")
        assert good.null_count == 0

    def test_wall_links_subject(self, full_parser):
        result = full_parser.parse("The stack is full.")
        assert "Wd(<WALL>,stack)" in result.best.link_summary()


class TestQuestions:
    @pytest.mark.parametrize(
        "sentence, anchor",
        [
            ("What is a stack?", "Ws(<WALL>,what)"),
            ("Is the stack empty?", "Wq(<WALL>,is)"),
            ("Does the stack have a pop method?", "Wq(<WALL>,does)"),
            ("Can a stack overflow?", "Wq(<WALL>,can)"),
            ("Which structure has a push method?", "Ws(<WALL>,which)"),
            ("How do I implement a queue?", "Wh(<WALL>,how)"),
            ("Why does the heap use an array?", "Wh(<WALL>,why)"),
        ],
    )
    def test_question_anchors(self, full_parser, sentence, anchor):
        result = full_parser.parse(sentence)
        assert result.null_count == 0, sentence
        assert anchor in result.best.link_summary()

    def test_subject_inversion(self, full_parser):
        result = full_parser.parse("Does the stack have a top?")
        assert "SIs(does,stack)" in result.best.link_summary()
        assert "I(does,have)" in result.best.link_summary()


class TestImperatives:
    @pytest.mark.parametrize(
        "sentence",
        [
            "Push the data onto the stack.",
            "Pop the top element.",
            "Insert the key into the tree.",
            "Traverse the tree.",
            "Compare the two algorithms.",
        ],
    )
    def test_imperative_parses(self, full_parser, sentence):
        result = full_parser.parse(sentence)
        assert result.null_count == 0, sentence
        assert "Wi(<WALL>," in result.best.link_summary()


class TestModifiers:
    def test_stacked_adjectives_multi_connector(self, full_parser):
        result = full_parser.parse("The balanced binary tree is efficient.")
        assert result.null_count == 0
        summary = result.best.link_summary()
        assert "A(balanced,tree)" in summary
        assert "A(binary,tree)" in summary

    def test_noun_noun_compound(self, full_parser):
        result = full_parser.parse("The pop method removes the top element.")
        assert result.null_count == 0
        assert "AN(pop,method)" in result.best.link_summary()

    def test_trailing_name_compound(self, full_parser):
        result = full_parser.parse("Which data structure has the method push?")
        assert "AN(method,push)" in result.best.link_summary()

    def test_prepositional_chain(self, full_parser):
        result = full_parser.parse("The top of the stack holds the last element.")
        assert result.null_count == 0
        summary = result.best.link_summary()
        assert "M(top,of)" in summary
        assert "J(of,stack)" in summary

    def test_relative_clause(self, full_parser):
        result = full_parser.parse("The structure that holds the data is a stack.")
        assert result.null_count == 0
        summary = result.best.link_summary()
        assert "R(structure,that)" in summary
        assert "Ss(that,holds)" in summary

    def test_negation(self, full_parser):
        result = full_parser.parse("The stack does not have a dequeue method.")
        assert result.null_count == 0
        assert "N(does,not)" in result.best.link_summary()

    def test_passive_with_modifier(self, full_parser):
        result = full_parser.parse("The keys are stored in the table.")
        assert result.null_count == 0
        summary = result.best.link_summary()
        assert "Pv(are,stored)" in summary
        assert "MV(stored,in)" in summary


class TestLearnerErrors:
    def test_scrambled_word_order_detected(self, full_parser):
        result = full_parser.parse("Stack the is structure data a.")
        assert result.null_count > 0

    def test_unknown_word_flagged_but_parse_survives(self, full_parser):
        result = full_parser.parse("The frobnicator holds the data.")
        assert result.unknown_words == ("frobnicator",)
        assert result.null_count == 0
        assert not result.is_grammatical

    def test_agreement_error_needs_null(self, full_parser):
        result = full_parser.parse("The trees is balanced.")
        assert result.null_count > 0

    def test_double_determiner_detected(self, full_parser):
        result = full_parser.parse("The a stack is full.")
        assert result.null_count > 0


class TestDeterminism:
    def test_same_input_same_output(self, full_parser):
        first = full_parser.parse("The stack holds the data.")
        second = full_parser.parse("The stack holds the data.")
        assert first.best.link_summary() == second.best.link_summary()
        assert first.total_count == second.total_count

    def test_best_linkage_is_minimal_cost(self, full_parser):
        result = full_parser.parse("Does stack have pop method?")
        costs = [linkage.cost for linkage in result.linkages]
        assert costs == sorted(costs)
