"""Cross-parser shared cache: correctness of the ParseCacheStore.

Two parsers attached to one store must serve each other's results when
(and only when) their options agree; mutating the dictionary must purge
the store; and the Learning_Angel wiring (analyzer + repairer on the
dictionary's shared store) must change nothing observable about reviews
or repairs."""

from __future__ import annotations

import pytest

from repro.agents.learning_angel import LearningAngelAgent
from repro.linkgrammar import ParseCacheStore, ParseOptions, Parser
from repro.linkgrammar.lexicon import default_dictionary, toy_dictionary
from repro.linkgrammar.repair import SentenceRepairer

SENTENCES = [
    "We push an element onto the stack.",
    "The tree doesn't have pop method.",
    "The stacks is full.",
    "tree have pop",
]


def assert_results_identical(a, b):
    assert a.words == b.words
    assert a.null_count == b.null_count
    assert a.total_count == b.total_count
    assert a.unknown_words == b.unknown_words
    assert a.linkages == b.linkages


class TestSharedStore:
    def test_second_parser_hits_first_parsers_work(self):
        dictionary = default_dictionary()
        store = ParseCacheStore(max_entries=64)
        first = Parser(dictionary, ParseOptions(), cache_store=store)
        second = Parser(dictionary, ParseOptions(), cache_store=store)
        for sentence in SENTENCES:
            cold = first.parse(sentence)
        misses_after_fill = store.misses
        for sentence in SENTENCES:
            assert_results_identical(second.parse(sentence), first.parse(sentence))
        assert store.misses == misses_after_fill  # all of round two hit
        assert store.hits >= 2 * len(SENTENCES)

    def test_different_options_never_cross_serve(self):
        dictionary = default_dictionary()
        store = ParseCacheStore(max_entries=64)
        pruned = Parser(dictionary, ParseOptions(prune=True), cache_store=store)
        unpruned = Parser(dictionary, ParseOptions(prune=False), cache_store=store)
        for sentence in SENTENCES:
            a = pruned.parse(sentence)
            b = unpruned.parse(sentence)
            assert_results_identical(a, b)  # pruning is sound...
        # ...but the entries are keyed apart: each fingerprint parsed cold.
        assert store.parse_entries == 2 * len(SENTENCES)

    def test_shared_results_identical_to_private(self):
        dictionary = default_dictionary()
        store = ParseCacheStore(max_entries=64)
        shared = Parser(dictionary, ParseOptions(), cache_store=store)
        private = Parser(dictionary, ParseOptions(cache_size=0))
        for sentence in SENTENCES:
            shared.parse(sentence)  # fill
            assert_results_identical(shared.parse(sentence), private.parse(sentence))

    def test_count_cache_shared_too(self):
        dictionary = toy_dictionary()
        store = ParseCacheStore(max_entries=64)
        options = ParseOptions(use_wall=False)
        a = Parser(dictionary, options, cache_store=store)
        b = Parser(dictionary, options, cache_store=store)
        expected = a.count_linkages("the cat chased a mouse")
        hits_before = store.hits
        assert b.count_linkages("the cat chased a mouse") == expected
        assert store.hits == hits_before + 1


class TestGenerationScoping:
    def test_dictionary_mutation_purges_shared_store(self):
        from repro.linkgrammar.dictionary import Dictionary

        d = Dictionary()
        d.define("a the", "D+")
        d.define("cat", "D- & S+")
        d.define("ran", "S-")
        store = d.shared_cache_store()
        parser = Parser(d, ParseOptions(use_wall=False), cache_store=store)
        before = parser.parse("the cat meowed")
        assert "meowed" in before.unknown_words
        assert store.parse_entries == 1
        d.define("meowed", "S-")
        after = parser.parse("the cat meowed")
        assert after.unknown_words == ()
        assert after.null_count == 0

    def test_shared_store_is_memoised_per_dictionary(self):
        from repro.linkgrammar.dictionary import Dictionary

        d = default_dictionary()
        assert d.shared_cache_store() is d.shared_cache_store()
        other = Dictionary()
        other.define("cat", "S+")
        assert other.shared_cache_store() is not d.shared_cache_store()

    def test_counters_survive_generation_purge(self):
        store = ParseCacheStore(max_entries=8)
        store.sync_generation(1)
        store.put_parse("k", "v")
        assert store.get_parse("k") == "v"
        store.sync_generation(2)
        assert store.parse_entries == 0
        assert store.hits == 1  # purge drops entries, not history


class TestLearningAngelWiring:
    def test_analyzer_and_repairer_share_one_store(self):
        dictionary = default_dictionary()
        agent = LearningAngelAgent(dictionary)
        assert agent.cache_store is not None
        assert agent.analyzer.parser.cache_store is agent.cache_store
        assert agent.repairer.parser.cache_store is agent.cache_store
        assert agent.cache_store is dictionary.shared_cache_store()

    def test_repair_candidates_warm_the_analyzer(self):
        dictionary = default_dictionary()
        agent = LearningAngelAgent(dictionary)
        store = agent.cache_store
        agent.review("The stacks is full.")  # triggers repair search
        hits_before = store.hits
        # The repairer's winning candidate is already in the store, so
        # analysing it costs one lookup.
        agent.review("The stack is full.")
        assert store.hits > hits_before

    def test_shared_wiring_changes_no_observables(self):
        dictionary_a = default_dictionary()
        dictionary_b = default_dictionary()
        shared = LearningAngelAgent(dictionary_a)
        isolated = LearningAngelAgent(
            dictionary_b, cache_store=ParseCacheStore(max_entries=0)
        )
        for sentence in SENTENCES + ["The stacks is full. We push an element onto the stack."]:
            a = shared.review(sentence)
            b = isolated.review(sentence)
            assert a.diagnosis.is_correct == b.diagnosis.is_correct
            assert [i.kind for i in a.diagnosis.issues] == [i.kind for i in b.diagnosis.issues]
            assert [r.text for r in a.repairs] == [r.text for r in b.repairs]
            assert a.suggestion == b.suggestion

    def test_repairer_default_options_unchanged_standalone(self):
        repairer = SentenceRepairer(default_dictionary())
        assert repairer.parser.options.max_linkages == 8
        repairs = repairer.repair("The stacks is full.")
        assert any(r.text == "The stack is full." for r in repairs)
