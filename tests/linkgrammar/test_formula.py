"""Formula language parsing."""

from __future__ import annotations

import pytest

from repro.linkgrammar.formula import (
    And,
    Cost,
    Empty,
    FormulaError,
    Leaf,
    Opt,
    Or,
    parse_formula,
)


class TestBasicParsing:
    def test_single_connector(self):
        expr = parse_formula("S+")
        assert isinstance(expr, Leaf)
        assert expr.connector.head == "S"

    def test_and(self):
        expr = parse_formula("D- & S+")
        assert isinstance(expr, And)
        assert len(expr.parts) == 2

    def test_or(self):
        expr = parse_formula("S+ or O-")
        assert isinstance(expr, Or)
        assert len(expr.parts) == 2

    def test_and_binds_tighter_than_or(self):
        expr = parse_formula("D- & S+ or O-")
        assert isinstance(expr, Or)
        assert isinstance(expr.parts[0], And)
        assert isinstance(expr.parts[1], Leaf)

    def test_parentheses_override(self):
        expr = parse_formula("D- & (S+ or O-)")
        assert isinstance(expr, And)
        assert isinstance(expr.parts[1], Or)

    def test_optional(self):
        expr = parse_formula("{@A-} & D-")
        assert isinstance(expr, And)
        assert isinstance(expr.parts[0], Opt)

    def test_cost_brackets(self):
        expr = parse_formula("[O-]")
        assert isinstance(expr, Cost)

    def test_empty_formula_unit(self):
        expr = parse_formula("(Ds- or [()])")
        assert isinstance(expr, Or)
        inner = expr.parts[1]
        assert isinstance(inner, Cost)
        assert isinstance(inner.inner, Empty)

    def test_nested_cost(self):
        expr = parse_formula("[[S+]]")
        assert isinstance(expr, Cost)
        assert isinstance(expr.inner, Cost)

    def test_multiway_or(self):
        expr = parse_formula("A+ or B+ or C+")
        assert isinstance(expr, Or)
        assert len(expr.parts) == 3

    def test_walk_visits_all_nodes(self):
        expr = parse_formula("{@A-} & (S+ or O-)")
        kinds = [type(node).__name__ for node in expr.walk()]
        assert "And" in kinds
        assert "Opt" in kinds
        assert "Or" in kinds
        assert kinds.count("Leaf") == 3


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "S+ &",
            "& S+",
            "(S+",
            "S+)",
            "{S+",
            "[S+",
            "S+ S-",
            "S+ or",
            "lowercase+",
            "S+ xor O-",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(FormulaError):
            parse_formula(bad)

    def test_error_mentions_formula(self):
        with pytest.raises(FormulaError) as info:
            parse_formula("(S+")
        assert "(S+" in str(info.value)


class TestStability:
    def test_str_reparses_to_same_ast(self):
        sources = [
            "S+",
            "D- & S+",
            "{@A-} & (Ds- or [()]) & (S+ or O-)",
            "[[()]]",
            "(Wq- & SIs+ & I+) or (Ss- & {N+} & I+)",
        ]
        for source in sources:
            first = parse_formula(source)
            second = parse_formula(str(first))
            assert first == second

    def test_ast_hashable(self):
        assert hash(parse_formula("S+ or O-")) == hash(parse_formula("S+ or O-"))
