"""Dictionary construction, file format, and lookup semantics."""

from __future__ import annotations

import pytest

from repro.linkgrammar.dictionary import (
    Dictionary,
    DictionaryError,
    UNKNOWN_WORD,
    WALL_WORD,
)
from repro.linkgrammar.lexicon.toy import TOY_DICTIONARY_TEXT, toy_dictionary


class TestDefine:
    def test_single_word(self):
        d = Dictionary()
        d.define("cat", "D- & S+")
        assert "cat" in d
        assert len(d) == 1

    def test_space_separated_words(self):
        d = Dictionary()
        d.define("a the", "D+")
        assert "a" in d and "the" in d

    def test_iterable_words(self):
        d = Dictionary()
        d.define(["x", "y"], "S+")
        assert sorted(d.words()) == ["x", "y"]

    def test_case_insensitive(self):
        d = Dictionary()
        d.define("Cat", "S+")
        assert "CAT" in d
        assert d.lookup("cAt") is not None

    def test_redefinition_merges_with_or(self):
        d = Dictionary()
        d.define("run", "S-")
        before = len(d.lookup("run").disjuncts)
        d.define("run", "I-")
        after = len(d.lookup("run").disjuncts)
        assert after == before + 1

    def test_empty_words_rejected(self):
        d = Dictionary()
        with pytest.raises(DictionaryError):
            d.define([], "S+")


class TestFileFormat:
    def test_toy_dictionary_loads(self):
        d = toy_dictionary()
        assert sorted(d.words()) == ["a", "cat", "chased", "john", "mouse", "ran", "the"]

    def test_comments_stripped(self):
        d = Dictionary.from_text("% comment\nfoo: S+; % trailing\n")
        assert "foo" in d

    def test_multiline_entries(self):
        d = Dictionary.from_text("foo:\n  S+ or\n  O-;\n")
        assert len(d.lookup("foo").disjuncts) == 2

    def test_missing_colon_rejected(self):
        with pytest.raises(DictionaryError):
            Dictionary.from_text("foo S+;")

    def test_empty_formula_rejected(self):
        with pytest.raises(DictionaryError):
            Dictionary.from_text("foo: ;")

    def test_bad_formula_reports_word(self):
        with pytest.raises(DictionaryError) as info:
            Dictionary.from_text("foo: S+ &&& O-;")
        assert "foo" in str(info.value)

    def test_round_trip(self):
        d = toy_dictionary()
        text = d.to_text()
        d2 = Dictionary.from_text(text)
        assert d2.words() == d.words()
        for word in d.words():
            assert d2.lookup(word).disjuncts == d.lookup(word).disjuncts

    def test_toy_text_has_paper_words(self):
        for word in ["a", "the", "cat", "mouse", "John", "ran", "chased"]:
            assert word.lower() in TOY_DICTIONARY_TEXT.lower()


class TestLookup:
    def test_unknown_fallback(self):
        d = Dictionary()
        d.define(UNKNOWN_WORD, "S+")
        entry = d.lookup("zzz")
        assert entry is not None
        assert not d.is_known("zzz")

    def test_lookup_exact_skips_fallback(self):
        d = Dictionary()
        d.define(UNKNOWN_WORD, "S+")
        assert d.lookup_exact("zzz") is None

    def test_no_fallback_returns_none(self):
        d = Dictionary()
        assert d.lookup("zzz") is None

    def test_wall_entry(self):
        d = Dictionary()
        assert d.wall_entry is None
        d.define(WALL_WORD, "Wd+")
        assert d.wall_entry is not None


class TestMetrics:
    def test_disjunct_count(self):
        d = Dictionary()
        d.define("x", "S+ or O-")
        d.define("y", "S+")
        assert d.disjunct_count() == 3

    def test_merge(self):
        a = Dictionary()
        a.define("x", "S+")
        b = Dictionary()
        b.define("y", "O-")
        a.merge(b)
        assert "y" in a
