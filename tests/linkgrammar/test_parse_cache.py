"""Cache-correctness parity suite (the PR's acceptance gate).

Cached vs. cold :meth:`Parser.parse`, cached vs. cold
:meth:`Parser.count_linkages` and pruned vs. unpruned sessions must agree
*bit-identically* — same linkages, costs, null words and counts — on the
simulation sentence generator's output (correct / error templates) and on
the fixture sentences."""

from __future__ import annotations

import pytest

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.lexicon import default_dictionary, toy_dictionary
from repro.linkgrammar.tokenizer import tokenize
from repro.ontology.domains import default_ontology
from repro.simulation import ErrorInjector, SentenceGenerator

FIXTURE_SENTENCES = [
    "We push an element onto the stack.",
    "What is a queue?",
    "The tree doesn't have pop method.",
    "I push the data into a tree.",
    "A stack supports push.",
    "Push the data onto the stack.",
    "The queue has dequeue operation.",
    "A binary tree is a tree.",
    "the cat chased a mouse",
    "purple monkeys dishwasher",
    "",
]


def generated_corpus(count: int = 12) -> list[str]:
    """Deterministic mix of correct / error-injected / question sentences."""
    generator = SentenceGenerator(default_ontology(), seed=7)
    injector = ErrorInjector(seed=7)
    sentences: list[str] = []
    for _ in range(count):
        correct = generator.correct_statement().text
        sentences.append(correct)
        sentences.append(injector.inject_random(correct).text)
        sentences.append(generator.semantic_violation().text)
        sentences.append(generator.question().text)
        sentences.append(generator.chitchat().text)
    return sentences


ALL_SENTENCES = FIXTURE_SENTENCES + generated_corpus()


def assert_results_identical(a, b):
    assert a.words == b.words
    assert a.null_count == b.null_count
    assert a.total_count == b.total_count
    assert a.unknown_words == b.unknown_words
    assert a.has_wall == b.has_wall
    assert a.linkages == b.linkages  # links, labels, disjuncts, costs, nulls


class TestCachedVsCold:
    @pytest.fixture(scope="class")
    def dictionary(self):
        return default_dictionary()

    def test_parse_parity_on_corpus(self, dictionary):
        cold = Parser(dictionary, ParseOptions(cache_size=0))
        warm = Parser(dictionary, ParseOptions(cache_size=256))
        for sentence in ALL_SENTENCES:
            first = warm.parse(sentence)   # cache miss
            second = warm.parse(sentence)  # cache hit
            reference = cold.parse(sentence)
            assert_results_identical(first, reference)
            assert_results_identical(second, reference)
        assert warm.cache_hits >= len(ALL_SENTENCES) - 2  # duplicates collapse

    def test_count_linkages_parity(self, dictionary):
        cold = Parser(dictionary, ParseOptions(cache_size=0))
        warm = Parser(dictionary, ParseOptions(cache_size=256))
        for sentence in ALL_SENTENCES[:12]:
            for nulls in range(3):
                expected = cold.count_linkages(sentence, nulls=nulls)
                assert warm.count_linkages(sentence, nulls=nulls) == expected
                assert warm.count_linkages(sentence, nulls=nulls) == expected  # hit

    def test_cache_hit_reattaches_raw_sentence(self, dictionary):
        warm = Parser(dictionary)
        first = warm.parse("We push an element onto the stack.")
        second = warm.parse("we PUSH an element onto the stack")
        assert first.sentence.raw == "We push an element onto the stack."
        assert second.sentence.raw == "we PUSH an element onto the stack"
        assert first.linkages == second.linkages

    def test_pretokenized_input_hits_cache(self, dictionary):
        warm = Parser(dictionary)
        raw = "A stack supports push."
        warm.parse(raw)
        hits_before = warm.cache_hits
        result = warm.parse(tokenize(raw))
        assert warm.cache_hits == hits_before + 1
        assert result.sentence.raw == raw


class TestCacheLifecycle:
    def test_lru_is_bounded(self):
        parser = Parser(toy_dictionary(), ParseOptions(use_wall=False, cache_size=4))
        words = ["cat", "mouse", "John", "ran", "chased", "a", "the"]
        for i, word in enumerate(words):
            parser.parse(f"the {word} ran")
        assert parser.cache_info()["parse_entries"] <= 4

    def test_clear_caches(self):
        parser = Parser(toy_dictionary(), ParseOptions(use_wall=False))
        parser.parse("the cat ran")
        parser.parse("the cat ran")
        assert parser.cache_hits == 1
        parser.clear_caches()
        info = parser.cache_info()
        assert info == {
            "hits": 0,
            "misses": 0,
            "parse_entries": 0,
            "count_entries": 0,
            "cache_size": 256,
        }

    def test_dictionary_mutation_invalidates_cached_parses(self):
        from repro.linkgrammar.dictionary import Dictionary

        d = Dictionary()
        d.define("a the", "D+")
        d.define("cat dog", "D- & S+")
        d.define("ran", "S-")
        parser = Parser(d, ParseOptions(use_wall=False))
        before = parser.parse("the cat meowed")
        assert "meowed" in before.unknown_words
        d.define("meowed", "S-")
        after = parser.parse("the cat meowed")
        assert after.unknown_words == ()
        assert after.null_count == 0

    def test_cache_disabled_still_correct(self):
        parser = Parser(toy_dictionary(), ParseOptions(use_wall=False, cache_size=0))
        result = parser.parse("the cat chased a mouse")
        assert result.null_count == 0
        assert parser.cache_info()["parse_entries"] == 0


class TestPrunedVsUnpruned:
    """Power pruning is sound: it must never change any observable."""

    @pytest.mark.parametrize(
        "factory,options",
        [
            (toy_dictionary, dict(use_wall=False)),
            (default_dictionary, dict()),
        ],
    )
    def test_parity(self, factory, options):
        dictionary = factory()
        pruned = Parser(dictionary, ParseOptions(cache_size=0, prune=True, **options))
        unpruned = Parser(dictionary, ParseOptions(cache_size=0, prune=False, **options))
        sentences = (
            ["the cat chased a mouse", "cat ran", "John chased the mouse"]
            if factory is toy_dictionary
            else ALL_SENTENCES[:16]
        )
        for sentence in sentences:
            assert_results_identical(pruned.parse(sentence), unpruned.parse(sentence))

    def test_count_parity_unpruned(self):
        dictionary = default_dictionary()
        pruned = Parser(dictionary, ParseOptions(cache_size=0, prune=True))
        unpruned = Parser(dictionary, ParseOptions(cache_size=0, prune=False))
        for sentence in ALL_SENTENCES[:8]:
            for nulls in range(2):
                assert pruned.count_linkages(sentence, nulls=nulls) == unpruned.count_linkages(
                    sentence, nulls=nulls
                )
