"""Sentence repair: single-edit corrections of learner sentences."""

from __future__ import annotations

import pytest

from repro.linkgrammar.repair import SentenceRepairer
from repro.linkgrammar.lexicon import default_dictionary


@pytest.fixture(scope="module")
def repairer():
    return SentenceRepairer(default_dictionary())


class TestRepairs:
    def test_agreement_fixed_both_ways(self, repairer):
        repairs = repairer.repair("The stacks is full.")
        texts = [r.text for r in repairs]
        assert "The stack is full." in texts
        assert "The stacks are full." in texts

    def test_verb_form_fixed(self, repairer):
        repairs = repairer.repair("The stack hold the data.")
        texts = [r.text for r in repairs]
        assert "The stack holds the data." in texts

    def test_extra_word_removed(self, repairer):
        repairs = repairer.repair("The stack holds quickly data.")
        assert repairs
        assert repairs[0].null_count == 0

    def test_double_determiner_removed(self, repairer):
        repairs = repairer.repair("The a stack is full.")
        texts = [r.text for r in repairs]
        assert "A stack is full." in texts or "The stack is full." in texts

    def test_word_order_swap(self, repairer):
        repairs = repairer.repair("The stack full is.")
        texts = [r.text for r in repairs]
        assert "The stack is full." in texts

    def test_edit_descriptions_are_informative(self, repairer):
        repairs = repairer.repair("The stacks is full.")
        assert all("'" in r.edit for r in repairs)


class TestNonRepairs:
    def test_correct_sentence_returns_nothing(self, repairer):
        assert repairer.repair("The stack is full.") == []

    def test_empty_sentence(self, repairer):
        assert repairer.repair("") == []

    def test_repairs_never_contain_unknown_words(self, repairer):
        repairs = repairer.repair("The blorf holds the data.")
        for repair in repairs:
            assert "blorf" not in repair.text

    def test_repairs_strictly_improve(self, repairer):
        baseline = repairer.parser.parse("The stacks is full.")
        for repair in repairer.repair("The stacks is full."):
            assert (repair.null_count, repair.cost) < (
                baseline.null_count,
                baseline.best.cost if baseline.best else 0,
            )


class TestRanking:
    def test_results_sorted_best_first(self, repairer):
        repairs = repairer.repair("Stack is a data structure the.")
        keys = [r.sort_key() for r in repairs]
        assert keys == sorted(keys)

    def test_max_results_respected(self):
        repairer = SentenceRepairer(default_dictionary(), max_results=1)
        assert len(repairer.repair("The stacks is full.")) == 1

    def test_function_words_not_mangled(self, repairer):
        # 'the' must never be inflected like a verb ('thing').
        repairs = repairer.repair("The the stack is full.")
        for repair in repairs:
            assert "thing" not in repair.text.lower()
