"""Interned-connector parse tables: the id-based fast paths must agree
bit-for-bit with the string matching rule they replace."""

from __future__ import annotations

import pytest

from repro.linkgrammar.connector import Connector, ConnectorError, connectors_match, subscripts_match
from repro.linkgrammar.dictionary import Dictionary
from repro.linkgrammar.lexicon import default_dictionary, toy_dictionary


class TestSubscriptsFastPath:
    def test_equal_subscripts_short_circuit(self):
        assert subscripts_match("s", "s")
        assert subscripts_match("su", "su")
        assert subscripts_match("", "")

    def test_empty_side_matches_anything(self):
        assert subscripts_match("", "sp")
        assert subscripts_match("sp", "")

    def test_wildcards_and_padding_still_work(self):
        assert subscripts_match("*u", "su")
        assert subscripts_match("su", "s")
        assert not subscripts_match("su", "sp")
        assert not subscripts_match("s", "p")


class TestTrustedConstruction:
    def test_parse_round_trips(self):
        for text in ("S+", "Ss-", "@A-", "D*u+", "MVp-", "@Wd+"):
            connector = Connector.parse(text)
            assert str(connector) == text

    def test_parse_still_rejects_garbage(self):
        for bad in ("s+", "S", "S*", "Sß+", "1+", ""):
            with pytest.raises(ConnectorError):
                Connector.parse(bad)

    def test_direct_construction_still_validates(self):
        with pytest.raises(ConnectorError):
            Connector(head="s")
        with pytest.raises(ConnectorError):
            Connector(head="S", direction="x")
        with pytest.raises(ConnectorError):
            Connector(head="S", subscript="S")

    def test_trusted_equals_validated(self):
        assert Connector.parse("Ss+") == Connector(head="S", subscript="s", direction="+")
        assert hash(Connector.parse("@A-")) == hash(
            Connector(head="A", direction="-", multi=True)
        )


@pytest.mark.parametrize("dictionary_factory", [toy_dictionary, default_dictionary])
class TestMatchTableParity:
    """The precomputed id match table == the string rule, exhaustively."""

    def test_match_table_agrees_with_connectors_match(self, dictionary_factory):
        dictionary = dictionary_factory()
        tables = dictionary.tables
        connectors = tables.connectors
        assert connectors, "tables should intern at least one connector"
        for plus_id, plus in enumerate(connectors):
            for minus_id, minus in enumerate(connectors):
                expected = connectors_match(plus, minus)
                assert tables.matches(plus_id, minus_id) == expected, (plus, minus)

    def test_match_left_is_transpose_of_match_right(self, dictionary_factory):
        tables = dictionary_factory().tables
        for plus_id, minus_ids in enumerate(tables.match_right):
            for minus_id in minus_ids:
                assert plus_id in tables.match_left[minus_id]
        for minus_id, plus_ids in enumerate(tables.match_left):
            for plus_id in plus_ids:
                assert minus_id in tables.match_right[plus_id]

    def test_interned_disjuncts_mirror_entries(self, dictionary_factory):
        dictionary = dictionary_factory()
        tables = dictionary.tables
        for word in dictionary.words():
            entry = dictionary.lookup_exact(word)
            interned = tables.interned(word)
            assert len(interned) == len(entry.disjuncts)
            for original, fast in zip(entry.disjuncts, interned):
                assert fast.source is original
                assert tuple(tables.connectors[i] for i in fast.left) == original.left
                assert tuple(tables.connectors[i] for i in fast.right) == original.right
                assert fast.left_set == frozenset(fast.left)
                assert fast.right_set == frozenset(fast.right)


class TestTableLifecycle:
    def test_tables_cached_per_generation(self):
        d = Dictionary()
        d.define("a the", "D+")
        first = d.tables
        assert d.tables is first  # same generation -> same instance

    def test_define_invalidates_tables(self):
        d = Dictionary()
        d.define("a the", "D+")
        before = d.tables
        version = d.version
        d.define("cat", "D- & S+")
        assert d.version > version
        after = d.tables
        assert after is not before
        assert after.interned("cat")

    def test_multi_flags_preserved(self):
        d = Dictionary()
        d.define("cat", "{@A-} & D- & S+")
        tables = d.tables
        multi_ids = [i for i, flag in enumerate(tables.multi) if flag]
        assert multi_ids, "the @A- connector must be interned as multi"
        for i in multi_ids:
            assert tables.connectors[i].multi
