"""Fault-tolerant analysis: error localisation for Learning_Angel."""

from __future__ import annotations

import pytest

from repro.linkgrammar.lexicon import default_dictionary
from repro.linkgrammar.robust import ErrorKind, RobustAnalyzer


@pytest.fixture(scope="module")
def analyzer():
    return RobustAnalyzer(default_dictionary())


class TestCleanSentences:
    @pytest.mark.parametrize(
        "sentence",
        [
            "The stack holds the data.",
            "We push an element onto the stack.",
            "Does the queue have a front?",
            "Pop the top element.",
        ],
    )
    def test_no_issues(self, analyzer, sentence):
        diagnosis = analyzer.analyze(sentence)
        assert diagnosis.is_correct, diagnosis.summary()

    def test_summary_for_clean(self, analyzer):
        assert "No syntax problems" in analyzer.analyze("The stack is full.").summary()


class TestUnknownWords:
    def test_flagged_with_position(self, analyzer):
        diagnosis = analyzer.analyze("The frobnicator holds the data.")
        kinds = [issue.kind for issue in diagnosis.issues]
        assert ErrorKind.UNKNOWN_WORD in kinds
        issue = next(i for i in diagnosis.issues if i.kind == ErrorKind.UNKNOWN_WORD)
        assert issue.word == "frobnicator"
        assert issue.position == 1

    def test_message_names_the_word(self, analyzer):
        diagnosis = analyzer.analyze("The zorkmid is empty.")
        assert "zorkmid" in diagnosis.summary()


class TestUnlinkedWords:
    def test_agreement_error_detected(self, analyzer):
        diagnosis = analyzer.analyze("The trees is balanced.")
        assert not diagnosis.is_correct
        kinds = diagnosis.error_kinds
        assert ErrorKind.UNLINKED_WORD in kinds or ErrorKind.NO_PARSE in kinds

    def test_single_extra_word_localised(self, analyzer):
        diagnosis = analyzer.analyze("The stack holds quickly data.")
        unlinked = [i for i in diagnosis.issues if i.kind == ErrorKind.UNLINKED_WORD]
        assert [issue.word for issue in unlinked] == ["quickly"]

    def test_collapsed_parse_reports_once(self, analyzer):
        diagnosis = analyzer.analyze("The trees is balanced.")
        assert len(diagnosis.issues) == 1
        assert diagnosis.issues[0].kind == ErrorKind.NO_PARSE

    def test_scrambled_sentence(self, analyzer):
        diagnosis = analyzer.analyze("stack the full is.")
        assert not diagnosis.is_correct

    def test_positions_refer_to_sentence_tokens(self, analyzer):
        diagnosis = analyzer.analyze("The a stack is full.")
        unlinked = [i for i in diagnosis.issues if i.kind == ErrorKind.UNLINKED_WORD]
        assert unlinked
        for issue in unlinked:
            assert 0 <= issue.position < 5


class TestEdgeCases:
    def test_empty_sentence(self, analyzer):
        diagnosis = analyzer.analyze("...")
        assert ErrorKind.EMPTY in diagnosis.error_kinds

    def test_single_word_greeting(self, analyzer):
        diagnosis = analyzer.analyze("Hello.")
        assert diagnosis.is_correct

    def test_error_kinds_deduplicated(self, analyzer):
        diagnosis = analyzer.analyze("The qwijibo zorkmid flibbers.")
        assert diagnosis.error_kinds.count(ErrorKind.UNKNOWN_WORD) == 1


class TestHints:
    def test_unlinked_word_message_names_word(self, analyzer):
        diagnosis = analyzer.analyze("The a stack is full.")
        unlinked = [i for i in diagnosis.issues if i.kind == ErrorKind.UNLINKED_WORD]
        assert unlinked
        assert any(f"'{issue.word}'" in issue.message for issue in unlinked)
