"""Property-based tests against the full lexicon and generated workloads.

These extend the toy-grammar properties to the production dictionary:
whatever the simulated classroom can utter, the parser must handle
without violating its own invariants.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.lexicon import default_dictionary
from repro.linkgrammar.repair import SentenceRepairer
from repro.ontology.domains import default_ontology
from repro.simulation import ErrorInjector, SentenceGenerator

_parser = Parser(default_dictionary(), ParseOptions(max_linkages=256))
_generator_pool = [
    sentence
    for seed in (0, 1)
    for generator in (SentenceGenerator(default_ontology(), seed=seed),)
    for sentence in (
        [generator.correct_statement().text for _ in range(25)]
        + [generator.question().text for _ in range(15)]
        + [generator.semantic_violation().text for _ in range(10)]
    )
]


@given(st.sampled_from(_generator_pool))
@settings(max_examples=80, deadline=None)
def test_generated_sentences_meta_rules(sentence):
    result = _parser.parse(sentence)
    for linkage in result.linkages[:16]:
        assert linkage.validate() == [], sentence


@given(st.sampled_from(_generator_pool))
@settings(max_examples=60, deadline=None)
def test_generated_sentences_count_consistency(sentence):
    result = _parser.parse(sentence)
    if result.linkages and result.total_count <= 256:
        assert len(result.linkages) == result.total_count


@given(st.sampled_from(_generator_pool), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=60, deadline=None)
def test_injected_errors_never_crash_and_rank_sanely(sentence, seed):
    injector = ErrorInjector(seed=seed)
    result = injector.inject_random(sentence)
    parsed = _parser.parse(result.text)
    # Whatever happened, the parser terminates with a consistent report.
    assert parsed.null_count >= 0
    for linkage in parsed.linkages[:8]:
        assert len(linkage.null_words) == parsed.null_count
        assert linkage.validate() == []


@given(st.sampled_from(_generator_pool), st.integers(min_value=0, max_value=2 ** 31))
@settings(max_examples=30, deadline=None)
def test_repairs_are_grammatical(sentence, seed):
    injector = ErrorInjector(seed=seed)
    repairer = SentenceRepairer(default_dictionary())
    broken = injector.inject_random(sentence)
    for repair in repairer.repair(broken.text):
        result = _parser.parse(repair.text)
        assert result.null_count == 0, (broken.text, repair.text)


@given(st.text(alphabet="abcdefghij .?!'", max_size=40))
@settings(max_examples=100, deadline=None)
def test_arbitrary_garbage_never_crashes(text):
    result = _parser.parse(text)
    assert 0 <= result.null_count <= len(result.words)


@pytest.mark.slow
def test_every_lexicon_word_is_parse_safe():
    """Every word form can appear alone without crashing the parser.

    Discourse words ("yes", "thanks") link the wall (0 nulls); ordinary
    words leave themselves and the wall unlinked (2 nulls) — anything
    else would indicate a broken entry.
    """
    dictionary = default_dictionary()
    parser = Parser(dictionary)
    for word in dictionary.words():
        if word.startswith("<"):
            continue
        result = parser.parse(word)
        assert result.null_count in (0, 1, 2), word
