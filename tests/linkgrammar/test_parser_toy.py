"""Parser behaviour on the paper's Figure-1/Figure-2 toy grammar."""

from __future__ import annotations

import pytest

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.lexicon.toy import toy_dictionary


class TestFigure2:
    """Figure 2: 'The cat chased a mouse' and its unique linkage."""

    def test_exactly_one_linkage(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        assert result.total_count == 1

    def test_linkage_matches_figure(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        assert result.best.link_summary() == (
            "D(the,cat) S(cat,chased) O(chased,mouse) D(a,mouse)"
        )

    def test_linkage_is_fully_valid(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        assert result.best.validate() == []

    def test_no_null_words(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        assert result.null_count == 0
        assert result.is_grammatical


class TestGrammaticalVariants:
    @pytest.mark.parametrize(
        "sentence, summary",
        [
            ("John ran", "S(john,ran)"),
            ("The cat ran", "D(the,cat) S(cat,ran)"),
            ("John chased the mouse", "S(john,chased) O(chased,mouse) D(the,mouse)"),
            ("The mouse chased John", "D(the,mouse) S(mouse,chased) O(chased,john)"),
            (
                "A cat chased a cat",
                "D(a,cat) S(cat,chased) O(chased,cat) D(a,cat)",
            ),
        ],
    )
    def test_parses_uniquely(self, toy_parser, sentence, summary):
        result = toy_parser.parse(sentence)
        assert result.is_grammatical, sentence
        assert result.best.link_summary() == summary

    def test_count_equals_enumeration(self, toy_parser):
        result = toy_parser.parse("The cat chased a mouse")
        assert result.total_count == len(result.linkages)


class TestUngrammatical:
    def test_missing_subject(self, toy_parser):
        result = toy_parser.parse("chased the mouse")
        assert result.null_count > 0

    def test_double_determiner(self, toy_parser):
        result = toy_parser.parse("the a cat ran")
        assert result.null_count == 1

    def test_bare_noun_subject_fails(self, toy_parser):
        # Toy grammar nouns *require* a determiner.
        result = toy_parser.parse("cat ran")
        assert result.null_count > 0

    def test_verb_verb(self, toy_parser):
        result = toy_parser.parse("ran chased")
        assert result.null_count > 0

    def test_null_words_are_localised(self, toy_parser):
        result = toy_parser.parse("the a cat ran")
        # One of the two determiners is left unlinked.
        nulls = result.null_word_indices()
        assert len(nulls) == 1
        assert next(iter(nulls)) in {0, 1}

    def test_empty_sentence(self, toy_parser):
        result = toy_parser.parse("")
        assert result.linkages != ()
        assert result.null_count == 0
        assert len(result.words) == 0


class TestIntransitiveVsTransitive:
    def test_ran_rejects_object(self, toy_parser):
        result = toy_parser.parse("John ran the mouse")
        assert result.null_count > 0

    def test_chased_requires_object(self, toy_parser):
        result = toy_parser.parse("John chased")
        assert result.null_count > 0


class TestAmbiguity:
    def test_ambiguous_dictionary_counts_all_parses(self):
        d = toy_dictionary()
        # Make 'saw' both transitive verb and noun to create ambiguity in
        # an artificial sentence; counts must include every reading.
        d.define("saw", "(S- & O+) or (D- & (S+ or O-))")
        parser = Parser(d, ParseOptions(use_wall=False))
        result = parser.parse("the saw chased the mouse")
        assert result.is_grammatical
        assert result.total_count == 1

    def test_counts_match_enumeration_on_ambiguous_input(self):
        d = toy_dictionary()
        d.define("near", "O- or S+")  # nonsense entry to force ambiguity
        parser = Parser(d, ParseOptions(use_wall=False, max_linkages=500))
        result = parser.parse("John chased near")
        assert result.total_count == len(result.linkages)


class TestOptions:
    def test_max_null_count_zero_blocks_bad_sentences(self):
        parser = Parser(toy_dictionary(), ParseOptions(use_wall=False, max_null_count=0))
        result = parser.parse("cat ran")
        assert result.linkages == ()
        assert not result.is_grammatical

    def test_max_linkages_caps_enumeration(self):
        d = toy_dictionary()
        d.define("blob", "S+ or S+ or O-")  # duplicate branches collapse
        parser = Parser(d, ParseOptions(use_wall=False, max_linkages=1))
        result = parser.parse("the cat chased a mouse")
        assert len(result.linkages) == 1

    def test_count_linkages_api(self, toy_parser):
        assert toy_parser.count_linkages("The cat chased a mouse") == 1
        assert toy_parser.count_linkages("cat ran", nulls=0) == 0
