"""Tokenizer behaviour on chat text."""

from __future__ import annotations

from repro.linkgrammar.tokenizer import split_sentences, tokenize


class TestTokenize:
    def test_simple_sentence(self):
        t = tokenize("The cat chased a mouse.")
        assert t.words == ("the", "cat", "chased", "a", "mouse")
        assert t.terminator == "."

    def test_question_mark(self):
        t = tokenize("What is Stack?")
        assert t.is_question_marked
        assert t.words == ("what", "is", "stack")

    def test_contraction_kept_whole(self):
        t = tokenize("The tree doesn't have pop method.")
        assert "doesn't" in t.words

    def test_no_terminator(self):
        t = tokenize("hello there")
        assert t.terminator == ""
        assert not t.is_question_marked

    def test_internal_commas_dropped(self):
        t = tokenize("push, pop, and peek.")
        assert t.words == ("push", "pop", "and", "peek")

    def test_hyphenated_words(self):
        t = tokenize("first-in first-out")
        assert t.words == ("first-in", "first-out")

    def test_numbers(self):
        t = tokenize("insert 42 into the heap")
        assert "42" in t.words

    def test_case_folding(self):
        t = tokenize("STACK Is LIFO")
        assert t.words == ("stack", "is", "lifo")

    def test_empty_input(self):
        t = tokenize("")
        assert t.words == ()
        assert len(t) == 0

    def test_exclamation(self):
        t = tokenize("Pop it!")
        assert t.terminator == "!"

    def test_multiple_terminators(self):
        t = tokenize("Really??")
        assert t.terminator == "?"
        assert t.words == ("really",)

    def test_raw_preserved(self):
        raw = "What is Stack?"
        assert tokenize(raw).raw == raw


class TestSplitSentences:
    def test_split_two(self):
        assert split_sentences("I see. What is Stack?") == ["I see.", "What is Stack?"]

    def test_single(self):
        assert split_sentences("Just one sentence.") == ["Just one sentence."]

    def test_no_terminator(self):
        assert split_sentences("no punctuation at all") == ["no punctuation at all"]

    def test_empty(self):
        assert split_sentences("   ") == []

    def test_mixed_terminators(self):
        parts = split_sentences("Push it! Does it work? Yes.")
        assert len(parts) == 3
