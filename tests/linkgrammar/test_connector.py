"""Connector parsing and the matching rule."""

from __future__ import annotations

import pytest

from repro.linkgrammar.connector import (
    Connector,
    ConnectorError,
    connectors_match,
    link_label,
    subscripts_match,
)


class TestParsing:
    def test_simple_plus(self):
        c = Connector.parse("S+")
        assert c.head == "S"
        assert c.subscript == ""
        assert c.direction == "+"
        assert not c.multi

    def test_subscripted(self):
        c = Connector.parse("Ss-")
        assert c.head == "S"
        assert c.subscript == "s"
        assert c.direction == "-"

    def test_multi(self):
        c = Connector.parse("@A-")
        assert c.multi
        assert c.head == "A"

    def test_multichar_head(self):
        c = Connector.parse("MVp+")
        assert c.head == "MV"
        assert c.subscript == "p"

    def test_star_subscript(self):
        c = Connector.parse("D*u+")
        assert c.subscript == "*u"

    def test_str_round_trip(self):
        for text in ["S+", "Ss-", "@A-", "MVp+", "D*u-"]:
            assert str(Connector.parse(text)) == text

    @pytest.mark.parametrize("bad", ["", "s+", "S", "S*", "Sx!", "+S", "S++x"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConnectorError):
            Connector.parse(bad)

    def test_direct_construction_validates(self):
        with pytest.raises(ConnectorError):
            Connector(head="s")
        with pytest.raises(ConnectorError):
            Connector(head="S", direction="x")
        with pytest.raises(ConnectorError):
            Connector(head="S", subscript="S")


class TestSubscriptRule:
    def test_empty_matches_anything(self):
        assert subscripts_match("", "s")
        assert subscripts_match("p", "")

    def test_equal_match(self):
        assert subscripts_match("s", "s")

    def test_mismatch(self):
        assert not subscripts_match("s", "p")

    def test_star_is_wildcard(self):
        assert subscripts_match("*u", "su")
        assert subscripts_match("s*", "sp"[0] + "*")

    def test_positionwise(self):
        assert not subscripts_match("su", "sp")
        assert subscripts_match("su", "s")


class TestMatching:
    def test_opposite_directions_required(self):
        plus = Connector.parse("S+")
        minus = Connector.parse("S-")
        assert connectors_match(plus, minus)
        assert not connectors_match(minus, plus)
        assert not connectors_match(plus, plus)

    def test_head_must_agree(self):
        assert not connectors_match(Connector.parse("S+"), Connector.parse("O-"))

    def test_subscript_refinement(self):
        assert connectors_match(Connector.parse("Ss+"), Connector.parse("S-"))
        assert connectors_match(Connector.parse("S+"), Connector.parse("Ss-"))
        assert not connectors_match(Connector.parse("Ss+"), Connector.parse("Sp-"))

    def test_multi_flag_does_not_affect_matching(self):
        assert connectors_match(Connector.parse("@A+"), Connector.parse("A-"))


class TestLinkLabel:
    def test_label_prefers_concrete_subscript(self):
        assert link_label(Connector.parse("Ss+"), Connector.parse("S-")) == "Ss"
        assert link_label(Connector.parse("S+"), Connector.parse("Ss-")) == "Ss"

    def test_label_strips_trailing_stars(self):
        assert link_label(Connector.parse("D*u+"), Connector.parse("D-")) == "D*u"
        assert link_label(Connector.parse("D+"), Connector.parse("D-")) == "D"

    def test_connector_label_property(self):
        assert Connector.parse("MVp+").label == "MVp"
