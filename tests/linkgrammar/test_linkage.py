"""Linkage structure and the four meta-rules of section 2.1."""

from __future__ import annotations

import pytest

from repro.linkgrammar.connector import Connector
from repro.linkgrammar.disjunct import Disjunct
from repro.linkgrammar.linkage import Link, Linkage


def _link(left: int, right: int, label: str = "X") -> Link:
    return Link(left=left, right=right, label=label)


class TestLink:
    def test_endpoints_must_be_ordered(self):
        with pytest.raises(ValueError):
            Link(left=3, right=1, label="S")

    def test_crossing_detection(self):
        assert _link(0, 2).crosses(_link(1, 3))
        assert _link(1, 3).crosses(_link(0, 2))

    def test_nesting_is_not_crossing(self):
        assert not _link(0, 3).crosses(_link(1, 2))

    def test_shared_endpoint_is_not_crossing(self):
        assert not _link(0, 2).crosses(_link(0, 3))
        assert not _link(0, 2).crosses(_link(2, 3))

    def test_disjoint_is_not_crossing(self):
        assert not _link(0, 1).crosses(_link(2, 3))

    def test_from_connectors_builds_label(self):
        link = Link.from_connectors(0, 1, Connector.parse("Ss+"), Connector.parse("S-"))
        assert link.label == "Ss"


def _simple_linkage(links, n_words=4, nulls=frozenset()):
    words = tuple(f"w{i}" for i in range(n_words))
    return Linkage(words=words, links=tuple(links), disjuncts=(None,) * n_words, null_words=nulls)


class TestMetaRules:
    def test_planarity_violation_detected(self):
        linkage = _simple_linkage([_link(0, 2), _link(1, 3)])
        assert not linkage.is_planar()
        assert "planarity" in linkage.validate()

    def test_planarity_ok(self):
        linkage = _simple_linkage([_link(0, 3), _link(1, 2)])
        assert linkage.is_planar()

    def test_connectivity_violation(self):
        linkage = _simple_linkage([_link(0, 1), _link(2, 3)])
        assert not linkage.is_connected()

    def test_connectivity_ok_chain(self):
        linkage = _simple_linkage([_link(0, 1), _link(1, 2), _link(2, 3)])
        assert linkage.is_connected()

    def test_connectivity_ignores_null_words(self):
        linkage = _simple_linkage([_link(0, 1), _link(1, 2)], n_words=4, nulls=frozenset({3}))
        assert linkage.is_connected()

    def test_exclusion_violation(self):
        linkage = _simple_linkage([_link(0, 1, "A"), _link(0, 1, "B"), _link(1, 2), _link(2, 3)])
        assert not linkage.satisfies_exclusion()
        assert "exclusion" in linkage.validate()

    def test_single_word_is_connected(self):
        linkage = Linkage(words=("hi",), links=(), disjuncts=(None,))
        assert linkage.is_connected()


class TestOrderingCheck:
    def test_ordering_requires_full_consumption(self):
        d = Disjunct(left=(), right=(Connector.parse("S+"), Connector.parse("O+")))
        linkage = Linkage(
            words=("v", "o"),
            links=(Link(0, 1, "O"),),
            disjuncts=(d, None),
        )
        assert not linkage.satisfies_ordering()

    def test_multi_connector_allows_extra_links(self):
        d = Disjunct(left=(), right=(Connector.parse("@A+"),))
        linkage = Linkage(
            words=("adj", "n1", "n2"),
            links=(Link(0, 1, "A"), Link(0, 2, "A2")),
            disjuncts=(d, None, None),
        )
        assert not linkage.satisfies_exclusion() or True  # different pairs
        assert linkage.satisfies_ordering()


class TestAccessors:
    def test_links_at(self):
        linkage = _simple_linkage([_link(0, 1), _link(1, 2), _link(2, 3)])
        assert len(linkage.links_at(1)) == 2
        assert len(linkage.links_at(0)) == 1

    def test_partner_labels(self):
        linkage = _simple_linkage([_link(0, 1, "D"), _link(1, 2, "S")])
        assert ("D", 0) in linkage.partner_labels(1)
        assert ("S", 2) in linkage.partner_labels(1)

    def test_total_link_length(self):
        linkage = _simple_linkage([_link(0, 3), _link(1, 2)])
        assert linkage.total_link_length == 4

    def test_sort_key_ranks_nulls_first(self):
        clean = _simple_linkage([_link(0, 1), _link(1, 2), _link(2, 3)])
        nully = _simple_linkage([_link(0, 1), _link(1, 2)], nulls=frozenset({3}))
        assert clean.sort_key() < nully.sort_key()

    def test_link_summary_sorted(self):
        linkage = _simple_linkage([_link(1, 2, "B"), _link(0, 1, "A")])
        assert linkage.link_summary() == "A(w0,w1) B(w1,w2)"
