"""Teaching Material Recommendation (Figure 3's response arrow)."""

from __future__ import annotations

import pytest

from repro.agents import TeachingMaterialRecommender
from repro.ontology.domains import default_ontology
from repro.profiles import UserProfileStore


@pytest.fixture()
def recommender():
    return TeachingMaterialRecommender(default_ontology())


def _struggling_profile(store: UserProfileStore, topics=("stack", "push")):
    for i in range(3):
        store.record_activity(
            "sam", float(i), syntax_error=(i == 0), semantic_error=(i > 0), topics=topics
        )
    return store.get("sam")


class TestTriggering:
    def test_no_recommendation_for_clean_learner(self, recommender):
        store = UserProfileStore()
        store.record_activity("amy", 1.0, topics=("stack",))
        assert recommender.recommend(store.get("amy")) is None

    def test_struggling_learner_gets_material(self, recommender):
        profile = _struggling_profile(UserProfileStore())
        recommendation = recommender.recommend(profile)
        assert recommendation is not None
        assert recommendation.user == "sam"
        assert recommendation.materials

    def test_threshold_configurable(self):
        recommender = TeachingMaterialRecommender(default_ontology(), error_threshold=10)
        profile = _struggling_profile(UserProfileStore())
        assert recommender.recommend(profile) is None

    def test_weak_topics_prefer_frequent(self, recommender):
        store = UserProfileStore()
        store.record_activity("pat", 1.0, semantic_error=True, topics=("tree", "tree", "stack"))
        store.record_activity("pat", 2.0, semantic_error=True, topics=("tree",))
        topics = recommender.weak_topics(store.get("pat"))
        assert topics[0] == "tree"

    def test_operations_are_not_topics(self, recommender):
        # Only concepts/algorithms make useful study topics.
        store = UserProfileStore()
        store.record_activity("lee", 1.0, semantic_error=True, topics=("push", "stack"))
        store.record_activity("lee", 2.0, semantic_error=True, topics=("push",))
        topics = recommender.weak_topics(store.get("lee"))
        assert "push" not in topics
        assert "stack" in topics


class TestMaterials:
    def test_stack_material_includes_algorithms(self, recommender):
        ontology = default_ontology()
        materials = recommender.materials_for(ontology.find("stack"))
        kinds = {material.kind for material in materials}
        assert {"definition", "symbol", "operations", "algorithm"} <= kinds

    def test_material_text_rendering(self, recommender):
        profile = _struggling_profile(UserProfileStore())
        recommendation = recommender.recommend(profile)
        text = recommendation.as_text()
        assert "sam" in text
        assert "definition" in text


class TestSystemIntegration:
    def test_recommend_for_api(self):
        from repro import ELearningSystem

        system = ELearningSystem.with_defaults()
        system.open_room("r", topic="t")
        system.join("r", "dana")
        # Two semantic mistakes about trees.
        system.say("r", "dana", "I push the data into a tree.")
        system.say("r", "dana", "I pop the element from the tree.")
        recommendation = system.recommend_for("dana")
        assert recommendation is not None
        assert any(material.topic == "tree" for material in recommendation.materials)

    def test_recommend_for_unknown_user(self):
        from repro import ELearningSystem

        system = ELearningSystem.with_defaults()
        assert system.recommend_for("nobody") is None
