"""Learning_Angel: the Figure-4 workflow."""

from __future__ import annotations

import pytest

from repro.agents import LearningAngelAgent
from repro.corpus import CorporaGenerator, Correctness, LearnerCorpus
from repro.linkgrammar.lexicon import default_dictionary
from repro.nlp import KeywordFilter
from repro.ontology.domains import default_ontology


@pytest.fixture()
def agent():
    corpus = LearnerCorpus()
    CorporaGenerator(default_ontology()).populate(corpus)
    return LearningAngelAgent(
        default_dictionary(),
        corpus=corpus,
        keyword_filter=KeywordFilter(default_ontology()),
    )


class TestReview:
    def test_clean_sentence(self, agent):
        review = agent.review("The stack holds the data.")
        assert review.is_correct
        assert review.suggestion is None
        assert [k.name for k in review.keywords] == ["stack"]

    def test_error_produces_suggestion(self, agent):
        review = agent.review("The stack holds quickly data wrong order.")
        assert not review.is_correct or review.suggestion is None
        # A clearly broken sentence about stacks should pull a stack
        # sentence from the seeded corpus.
        broken = agent.review("stack the holds data quickly the.")
        assert not broken.is_correct
        assert broken.suggestion is not None
        assert "stack" in broken.suggestion.lower()

    def test_unknown_word_review(self, agent):
        review = agent.review("The blorf holds the data.")
        assert not review.is_correct
        kinds = [issue.kind.value for issue in review.diagnosis.issues]
        assert "unknown-word" in kinds

    def test_replies_for_errors(self, agent):
        review = agent.review("stack the holds data quickly the.")
        replies = review.as_replies()
        assert replies
        assert replies[0].agent == "Learning_Angel"

    def test_stateless_agent_works(self):
        bare = LearningAngelAgent(default_dictionary())
        review = bare.review("The stack is full.")
        assert review.is_correct
        assert bare.record(review, "u", "r", 0.0) is None


class TestRecording:
    def test_record_writes_to_corpus(self, agent):
        before = len(agent.corpus)
        review = agent.review("The stack is full.")
        record = agent.record(review, user="alice", room="r1", timestamp=3.0)
        assert len(agent.corpus) == before + 1
        assert record.user == "alice"
        assert record.verdict == Correctness.CORRECT
        assert record.pattern == "simple"
        assert record.links != ""

    def test_record_error_verdict(self, agent):
        review = agent.review("stack the holds data quickly the.")
        record = agent.record(review, user="bob", room="r1", timestamp=4.0)
        assert record.verdict == Correctness.SYNTAX_ERROR
        assert record.syntax_issues

    def test_record_explicit_verdict(self, agent):
        review = agent.review("I push the data into a tree.")
        record = agent.record(
            review, "bob", "r1", 5.0,
            verdict=Correctness.SEMANTIC_ERROR,
            semantic_issues=["tree~push"],
        )
        assert record.verdict == Correctness.SEMANTIC_ERROR
        assert record.semantic_issues == ["tree~push"]

    def test_keywords_recorded(self, agent):
        review = agent.review("The tree doesn't have pop method.")
        record = agent.record(review, "alice", "r1", 6.0)
        assert set(record.keywords) == {"tree", "pop"}
