"""The rejected Semantic-Link-Grammar methodology (ablation baseline A1)."""

from __future__ import annotations

import pytest

from repro.agents import SemanticLinkGrammarAgent, SemanticVerdict
from repro.ontology.domains import default_ontology


@pytest.fixture(scope="module")
def agent():
    return SemanticLinkGrammarAgent(default_ontology())


class TestCoreSelection:
    def test_push_into_tree_rejected(self, agent):
        review = agent.review("I push the data into a tree.")
        assert review.verdict == SemanticVerdict.VIOLATION

    def test_push_onto_stack_accepted(self, agent):
        review = agent.review("We push the data onto the stack.")
        assert review.verdict == SemanticVerdict.OK
        assert review.null_count == 0

    def test_passive_heap_push_rejected(self, agent):
        review = agent.review("The data is pushed in this heap.")
        assert review.verdict == SemanticVerdict.VIOLATION

    def test_insert_into_tree_accepted(self, agent):
        review = agent.review("We insert the data into the tree.")
        assert review.verdict == SemanticVerdict.OK

    def test_questions_skipped(self, agent):
        review = agent.review("Does stack have pop method?")
        assert review.verdict == SemanticVerdict.QUESTION

    def test_syntax_skipped(self, agent):
        review = agent.review("anything", syntactically_ok=False)
        assert review.verdict == SemanticVerdict.SYNTAX_SKIPPED


class TestCapabilityChains:
    def test_negated_true_capability_misconception(self, agent):
        review = agent.review("The stack doesn't have push.")
        assert review.verdict == SemanticVerdict.MISCONCEPTION

    def test_negated_false_capability_ok(self, agent):
        review = agent.review("The tree doesn't have pop.")
        assert review.verdict == SemanticVerdict.OK


class TestKnownLimitations:
    """The paper's stated reasons for rejecting this methodology."""

    def test_copula_taxonomy_not_expressible(self, agent):
        # "A stack is a data structure" is fine English and fine domain
        # knowledge, but the typed grammar has no is-a machinery, so this
        # methodology wrongly rejects it (a coverage false positive).
        review = agent.review("A stack is a data structure.")
        assert review.verdict == SemanticVerdict.VIOLATION

    def test_dictionary_is_much_larger_than_ontology_edits(self):
        agent = SemanticLinkGrammarAgent(default_ontology())
        cost = agent.maintenance_cost()
        # The blow-up the paper warns about: thousands of disjuncts for a
        # few dozen ontology concepts.
        assert cost["disjuncts"] > 1000
        assert cost["words"] > 100
        assert cost["operation_classes"] >= 20


class TestDeterminism:
    def test_same_verdicts_on_repeat(self, agent):
        first = agent.review("I push the data into a tree.")
        second = agent.review("I push the data into a tree.")
        assert first == second
