"""Single-pass analysis threading through the supervision stages.

The pipeline classifies/tokenises each sentence once and hands the
results to Learning_Angel and the Semantic Agent; the threaded calls must
be observably identical to the agents' self-computed paths."""

from __future__ import annotations

import pytest

from repro.agents.learning_angel import LearningAngelAgent
from repro.agents.semantic_agent import SemanticAgent
from repro.core.system import ELearningSystem
from repro.linkgrammar.lexicon import default_dictionary
from repro.linkgrammar.tokenizer import tokenize
from repro.nlp.keywords import KeywordFilter
from repro.nlp.patterns import classify
from repro.ontology.domains import default_ontology

SENTENCES = [
    "We push an element onto the stack.",
    "The tree doesn't have pop method.",
    "I push the data into a tree.",
    "Does stack have pop method?",
    "tree have pop",
]


@pytest.fixture(scope="module")
def ontology():
    return default_ontology()


@pytest.fixture(scope="module")
def semantic_agent(ontology):
    return SemanticAgent(ontology)


class TestSemanticAgentThreading:
    def test_precomputed_analysis_matches_self_computed(self, semantic_agent):
        for sentence in SENTENCES:
            tokenized = tokenize(sentence)
            pattern = classify(tokenized)
            keywords = tuple(semantic_agent.keyword_filter.extract(tokenized))
            threaded = semantic_agent.review(
                tokenized, syntactically_ok=True, analysis=pattern, keywords=keywords
            )
            plain = semantic_agent.review(sentence)
            assert threaded == plain

    def test_pretokenized_without_analysis(self, semantic_agent):
        for sentence in SENTENCES:
            assert semantic_agent.review(tokenize(sentence)) == semantic_agent.review(sentence)


class TestLearningAngelThreading:
    @pytest.fixture(scope="class")
    def agent(self, ontology):
        return LearningAngelAgent(
            default_dictionary(), keyword_filter=KeywordFilter(ontology)
        )

    def test_review_accepts_tokenized_and_pattern(self, agent):
        for sentence in SENTENCES:
            tokenized = tokenize(sentence)
            pattern = classify(tokenized)
            threaded = agent.review(tokenized, pattern=pattern)
            plain = agent.review(sentence)
            assert threaded.pattern == pattern
            assert plain.pattern == pattern
            assert threaded.diagnosis == plain.diagnosis
            assert threaded.keywords == plain.keywords
            assert threaded.repairs == plain.repairs

    def test_review_records_pattern_without_hint(self, agent):
        review = agent.review("What is a queue?")
        assert review.pattern is not None
        assert review.pattern.is_question


class TestPipelineSingleClassification:
    def test_supervision_still_counts_and_replies(self):
        """End-to-end smoke: the threaded pipeline produces the same
        verdict mix as before (questions answered, violations flagged)."""
        system = ELearningSystem.with_defaults()
        system.open_room("t", topic="t")
        system.join("t", "alice")
        system.say("t", "alice", "What is a queue?")
        system.say("t", "alice", "I push the data into a tree.")
        system.say("t", "alice", "The tree doesn't have pop method.")
        system.say("t", "alice", "tree have pop")
        stats = system.stats
        assert stats.questions == 1
        assert stats.semantic_violations >= 1
        assert stats.syntax_errors >= 1
        assert stats.misconceptions == 0  # the negated claim is true in-domain

    def test_recorded_pattern_comes_from_review(self):
        system = ELearningSystem.with_defaults()
        system.open_room("t", topic="t")
        system.join("t", "bob")
        before = len(system.corpus)
        system.say("t", "bob", "We push an element onto the stack.")
        added = system.corpus.records()[before:]
        assert [record.pattern for record in added] == ["simple"]
