"""The Semantic Agent (ontology methodology): section 4.3 end to end."""

from __future__ import annotations

import pytest

from repro.agents import SemanticAgent, SemanticVerdict
from repro.ontology.domains import default_ontology


@pytest.fixture(scope="module")
def agent():
    return SemanticAgent(default_ontology())


class TestPaperVerdicts:
    """The worked examples of sections 4.1 and 4.3, verbatim."""

    def test_push_into_tree_is_violation(self, agent):
        review = agent.review("I push the data into a tree.")
        assert review.verdict == SemanticVerdict.VIOLATION
        assert review.is_anomalous

    def test_negated_tree_pop_is_correct(self, agent):
        review = agent.review("The tree doesn't have pop method.")
        assert review.verdict == SemanticVerdict.OK

    def test_pushed_in_heap_is_violation(self, agent):
        # Section 4.1: "In the data structure course, heap doesn't have
        # push method."
        review = agent.review("The data is pushed in this heap.")
        assert review.verdict == SemanticVerdict.VIOLATION

    def test_evaluated_pair_ids_match_paper(self, agent):
        review = agent.review("The tree doesn't have pop method.")
        (pair,) = review.pairs
        assert {pair.left_id, pair.right_id} == {4, 33}


class TestRouting:
    def test_questions_are_skipped(self, agent):
        review = agent.review("Does stack have pop method?")
        assert review.verdict == SemanticVerdict.QUESTION

    def test_syntax_skipped(self, agent):
        review = agent.review("I push the data into a tree.", syntactically_ok=False)
        assert review.verdict == SemanticVerdict.SYNTAX_SKIPPED

    def test_no_keywords(self, agent):
        review = agent.review("The car is drinking water.")
        assert review.verdict == SemanticVerdict.NO_KEYWORDS

    def test_keywords_without_pairs(self, agent):
        review = agent.review("The stack is useful.")
        assert review.verdict == SemanticVerdict.OK


class TestCapabilityJudgement:
    @pytest.mark.parametrize(
        "sentence",
        [
            "We push an element onto the stack.",
            "We enqueue the element into the queue.",
            "Insert the key into the binary search tree.",
            "The heap supports the heapify operation.",
            "We traverse the graph.",
        ],
    )
    def test_supported_pairs_pass(self, agent, sentence):
        assert agent.review(sentence).verdict == SemanticVerdict.OK, sentence

    @pytest.mark.parametrize(
        "sentence",
        [
            "We enqueue the element into the stack.",
            "We push the element onto the queue.",
            "The array supports the pop operation.",
            "We dequeue the element from the tree.",
        ],
    )
    def test_unsupported_pairs_flagged(self, agent, sentence):
        assert agent.review(sentence).verdict == SemanticVerdict.VIOLATION, sentence

    def test_inherited_operation_accepted(self, agent):
        # insert is defined on tree; the AVL tree inherits it through
        # bst -> binary tree -> tree.
        review = agent.review("We insert the key into the avl tree.")
        assert review.verdict == SemanticVerdict.OK

    def test_any_supporting_container_suffices(self, agent):
        # Both stack and queue mentioned; queue supports enqueue.
        review = agent.review("We enqueue the element from the stack into the queue.")
        assert review.verdict == SemanticVerdict.OK


class TestNegationFlip:
    def test_negated_true_capability_is_misconception(self, agent):
        review = agent.review("The stack doesn't have a push method.")
        assert review.verdict == SemanticVerdict.MISCONCEPTION
        assert review.is_anomalous

    def test_negated_false_capability_is_ok(self, agent):
        review = agent.review("The queue doesn't support the push operation.")
        assert review.verdict == SemanticVerdict.OK

    def test_negative_property_claim(self, agent):
        review = agent.review("The stack is not fifo.")
        assert review.verdict == SemanticVerdict.OK
        review = agent.review("The stack is not lifo.")
        assert review.verdict == SemanticVerdict.MISCONCEPTION


class TestSuggestions:
    def test_violation_suggests_supporting_concept(self, agent):
        review = agent.review("I push the data into a tree.")
        joined = " ".join(review.suggestions)
        assert "stack" in joined

    def test_violation_lists_available_operations(self, agent):
        review = agent.review("I push the data into a tree.")
        joined = " ".join(review.suggestions)
        assert "insert" in joined

    def test_replies_rendered(self, agent):
        review = agent.review("I push the data into a tree.")
        replies = review.as_replies()
        assert replies
        assert replies[0].severity.value == "warning"
        assert "tree" in replies[0].text

    def test_ok_review_has_no_replies(self, agent):
        assert agent.review("We push an element onto the stack.").as_replies() == []


class TestPropertyAndIsA:
    def test_property_claims(self, agent):
        assert agent.review("The stack is lifo.").verdict == SemanticVerdict.OK
        assert agent.review("The queue is fifo.").verdict == SemanticVerdict.OK
        assert agent.review("The queue is lifo.").verdict == SemanticVerdict.VIOLATION

    def test_inherited_property(self, agent):
        assert agent.review("The heap is hierarchical.").verdict == SemanticVerdict.OK

    def test_is_a_claims(self, agent):
        assert agent.review("A stack is a data structure.").verdict == SemanticVerdict.OK
        assert agent.review("An avl tree is a tree.").verdict == SemanticVerdict.OK
        assert agent.review("The stack is a tree.").verdict == SemanticVerdict.VIOLATION
