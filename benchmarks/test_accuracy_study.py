"""Experiment A2 — the accuracy study the paper defers to future work.

Section 5: "In the future, we will focus on ... evaluating the accuracy of
the proposed Semantic Agent."  This benchmark runs that evaluation:
seeded classroom sessions at increasing error rates, scoring syntax and
semantic supervision against the injected ground truth.

Expected shape: detection quality stays high and roughly flat across
error rates (the supervisors judge sentences independently), and the QA
answer rate is unaffected by learner error rates.
"""

from __future__ import annotations

import pytest

from repro.evaluation import run_accuracy_study


@pytest.mark.parametrize("rates", [(0.1, 0.05), (0.25, 0.15), (0.4, 0.3)])
def test_accuracy_across_error_rates(benchmark, rates):
    syntax_rate, semantic_rate = rates

    def study():
        return run_accuracy_study(
            error_rates=[(syntax_rate, semantic_rate)],
            seeds=[1, 2],
            learners=4,
            rounds=5,
        )

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    for row in rows:
        assert row.syntax.recall >= 0.8, row.render()
        assert row.syntax.precision >= 0.8, row.render()
        assert row.semantic.recall >= 0.7, row.render()
        assert row.semantic.precision >= 0.7, row.render()
        assert row.questions_answer_rate >= 0.9, row.render()


def test_study_report_rows(benchmark):
    """Produces the EXPERIMENTS.md table (printed for the record)."""

    def study():
        return run_accuracy_study(
            error_rates=[(0.0, 0.0), (0.2, 0.1)],
            seeds=[3],
            learners=4,
            rounds=5,
        )

    rows = benchmark.pedantic(study, rounds=1, iterations=1)
    clean_row = rows[0]
    assert clean_row.syntax.false_negatives == 0
    assert clean_row.semantic.true_positives == 0
    for row in rows:
        print(row.render())
