"""Experiment A3 — scalability of the always-online supervisors.

The paper's motivation (section 1) is that instructors cannot supervise
every learner at once; the agents must keep up as the class grows.  This
benchmark sweeps class size and measures supervision throughput, plus the
FAQ hit-rate growth over session length (the "powerful learning
assistant" claim: the longer the class runs, the more questions are
answered from accumulated pairs).

Expected shape: per-message supervision cost is flat in class size
(supervision is per-message work), so total session time grows linearly;
FAQ hit-rate rises with session length.
"""

from __future__ import annotations

import pytest

from repro.core.system import ELearningSystem
from repro.simulation import ClassroomSession, LearnerProfile


@pytest.mark.parametrize("learners", [2, 8, 16])
def test_session_cost_vs_class_size(benchmark, learners):
    """Total cost of a 2-round session at increasing class sizes."""

    def session():
        system = ELearningSystem.with_defaults()
        run = ClassroomSession(system, learners=learners, seed=21).run(rounds=2)
        return system, run

    system, result = benchmark.pedantic(session, rounds=2, iterations=1)
    assert len(result.supervised) == learners * 2
    assert system.stats.messages >= learners * 2


def test_per_message_cost_flat_in_class_size(benchmark):
    """Messages/second does not degrade as the room fills.

    Total message count is held constant (32) while the class size
    varies, isolating class size from corpus growth: suggestion search
    scales with *accumulated messages*, not with how many learners sit
    in the room.
    """
    import time

    def throughput(learners: int, rounds: int) -> float:
        system = ELearningSystem.with_defaults()
        session = ClassroomSession(system, learners=learners, seed=33)
        start = time.perf_counter()
        result = session.run(rounds=rounds)
        elapsed = time.perf_counter() - start
        return len(result.supervised) / elapsed

    def compare():
        return throughput(2, 16), throughput(16, 2)

    small, large = benchmark.pedantic(compare, rounds=1, iterations=1)
    # Flat within generous tolerance (same per-message work).
    assert large > small * 0.4, (small, large)


def test_faq_hit_rate_grows_with_session_length(benchmark):
    """The longer the class, the more questions served from the FAQ."""

    def hit_rates():
        system = ELearningSystem.with_defaults()
        profile = LearnerProfile(question_rate=0.6, syntax_error_rate=0.05,
                                 semantic_error_rate=0.05)
        session = ClassroomSession(system, learners=6, profile=profile, seed=8)
        session.run(rounds=2)
        early_questions = system.stats.questions
        early_hits = system.stats.faq_hits
        session.run(rounds=6)
        late_questions = system.stats.questions - early_questions
        late_hits = system.stats.faq_hits - early_hits
        early_rate = early_hits / early_questions if early_questions else 0.0
        late_rate = late_hits / late_questions if late_questions else 0.0
        return early_rate, late_rate

    early_rate, late_rate = benchmark.pedantic(hit_rates, rounds=1, iterations=1)
    assert late_rate > early_rate


def test_supervision_throughput_baseline(benchmark):
    """Headline number: supervised messages per second, mixed traffic."""
    system = ELearningSystem.with_defaults()
    system.open_room("tput", topic="t")
    system.join("tput", "u")
    messages = [
        "We push an element onto the stack.",
        "What is a queue?",
        "The tree doesn't have pop method.",
        "I push the data into a tree.",
    ]
    index = 0

    def one_message():
        nonlocal index
        message = system.say("tput", "u", messages[index % len(messages)])
        index += 1
        return message

    result = benchmark(one_message)
    assert result is not None
