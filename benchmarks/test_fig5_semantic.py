"""Experiment F5 — Figure 5: the Data Structure ontology and the
Sentence Distance Evaluation.

Reproduces the paper's worked example end to end — tree (id 4) + pop
(id 33) are unrelated, so the affirmative pairing is flagged while the
negated sentence passes — and measures semantic-verdict accuracy on
labelled workloads, distance-query latency, and scaling of the distance
computation as the ontology grows.
"""

from __future__ import annotations

import pytest

from repro.agents import SemanticAgent, SemanticVerdict
from repro.evaluation import score_binary
from repro.ontology import OntologyGraph, SemanticDistanceEvaluator
from repro.ontology.builder import OntologyBuilder
from repro.ontology.domains import default_ontology
from repro.simulation import SentenceGenerator


def test_paper_worked_example(benchmark, ontology):
    """Ids and verdicts of section 4.3, exactly."""
    agent = SemanticAgent(ontology)

    def review_both():
        return (
            agent.review("I push the data into a tree."),
            agent.review("The tree doesn't have pop method."),
        )

    violation, negated = benchmark(review_both)
    assert violation.verdict == SemanticVerdict.VIOLATION
    assert negated.verdict == SemanticVerdict.OK
    assert ontology.find("tree").item_id == 4
    assert ontology.find("pop").item_id == 33


def test_semantic_accuracy_on_labelled_set(benchmark, ontology):
    """Verdict accuracy over 120 labelled statements (50/50 mix)."""
    agent = SemanticAgent(ontology)
    generator = SentenceGenerator(ontology, seed=31)
    labelled = []
    for _ in range(60):
        labelled.append((generator.correct_statement().text, False))
        labelled.append((generator.semantic_violation().text, True))

    def review_all():
        return [(truth, agent.review(text)) for text, truth in labelled]

    outcomes = benchmark.pedantic(review_all, rounds=2, iterations=1)
    scored = score_binary((truth, review.is_anomalous) for truth, review in outcomes)
    assert scored.f1 >= 0.95, scored.row()


def test_distance_query_latency(benchmark, ontology):
    evaluator = SemanticDistanceEvaluator(ontology)
    distance = benchmark(evaluator.distance, "tree", "pop")
    assert distance > 2.0


def test_single_source_distances_latency(benchmark, ontology):
    graph = OntologyGraph(ontology)
    source = ontology.find("stack").item_id
    distances = benchmark(graph.distances_from, source)
    assert len(distances) == len(ontology)


def _scaled_ontology(factor: int):
    """The domain ontology plus ``factor`` x 20 synthetic concepts."""
    builder = OntologyBuilder("scaled")
    base = default_ontology()
    # Recreate the real domain, then pad with synthetic chained concepts.
    from repro.ontology import translate
    from repro.ontology.ddl import Interpreter

    interpreter = Interpreter("scaled")
    ontology = interpreter.run(translate(base))
    for i in range(factor * 20):
        name = f"synthetic-{i}"
        ontology.add_item(
            type(base.get(1))(item_id=1000 + i, name=name)
        )
        anchor = "data structure" if i % 4 == 0 else f"synthetic-{i - 1}"
        from repro.ontology import RelationKind

        ontology.add_relation(name, RelationKind.RELATED_TO, anchor)
    return ontology


@pytest.mark.parametrize("factor", [1, 4, 16])
def test_distance_scaling_with_ontology_size(benchmark, factor):
    """Distance queries stay fast as the knowledge body grows (A3 flavour:
    the 'can be extended to other domain' claim of section 4.1)."""
    ontology = _scaled_ontology(factor)
    graph = OntologyGraph(ontology)
    a = ontology.find("tree").item_id
    b = ontology.find(f"synthetic-{factor * 20 - 1}").item_id
    distance = benchmark(graph.distance, a, b)
    assert distance > 0
