"""Experiment F3 — Figure 3: the end-to-end supervised chat-room flow.

Measures the full operation flow of the architecture diagram: a user
message entering the Augmentative Chat Room, passing Learning_Angel,
the Semantic Agent or the QA subsystem, and updating the corpus, FAQ and
profile databases.  Latency is reported per message class, and a whole
simulated classroom round is timed.
"""

from __future__ import annotations

import pytest

from repro.core.system import ELearningSystem
from repro.simulation import ClassroomSession, LearnerProfile


def _fresh_room():
    system = ELearningSystem.with_defaults()
    system.open_room("bench", topic="data structures")
    system.join("bench", "user")
    return system


@pytest.mark.parametrize(
    "label, text",
    [
        ("clean-statement", "We push an element onto the stack."),
        ("semantic-violation", "I push the data into a tree."),
        ("syntax-error", "stack the holds data quickly the."),
        ("question-definition", "What is Stack?"),
        ("question-capability", "Does the queue have a dequeue method?"),
    ],
)
def test_message_supervision_latency(benchmark, label, text):
    """Per-message cost of the full Fig. 3 flow, by message class."""
    system = _fresh_room()

    def supervise():
        return system.say("bench", "user", text)

    message = benchmark(supervise)
    assert message.text == text
    assert system.stats.messages > 0


def test_classroom_round_throughput(benchmark):
    """One full classroom round: 6 learners, teacher, mixed traffic."""

    def run_session():
        system = ELearningSystem.with_defaults()
        session = ClassroomSession(
            system,
            learners=6,
            profile=LearnerProfile(question_rate=0.2, syntax_error_rate=0.15,
                                   semantic_error_rate=0.1),
            seed=42,
        )
        return system, session.run(rounds=2)

    system, result = benchmark.pedantic(run_session, rounds=3, iterations=1)
    assert len(result.supervised) == 12
    assert system.stats.messages >= 12
    # Every database of Fig. 3's right-hand side was exercised.
    assert len(system.corpus) > 100        # seeded + recorded
    assert len(system.profiles) >= 6
    assert system.stats.questions_answered > 0


def test_supervision_is_deterministic(benchmark):
    """Same seed, same transcript — byte for byte (required by F3)."""

    def transcript():
        system = ELearningSystem.with_defaults()
        session = ClassroomSession(system, learners=4, seed=9)
        session.run(rounds=2)
        return [
            (m.sender, m.text) for m in system.server.get_room("classroom").transcript
        ]

    first = benchmark.pedantic(transcript, rounds=2, iterations=1)
    assert first == transcript()
