"""Experiment F6 — Figure 6: the Questions and Answers workflow.

Reproduces the QA flow of section 4.4: template matching, ontology-backed
answering (the "What is Stack?" walkthrough), FAQ accumulation with
frequency statistics, mining QA pairs out of dialogue, and answer-rate /
latency over a generated question workload (Zipf-shaped topics, so the FAQ
cache matters).
"""

from __future__ import annotations

import random

from repro.nlp import KeywordFilter
from repro.ontology.domains import default_ontology
from repro.ontology.domains.data_structures import STACK_DESCRIPTION
from repro.qa import FAQDatabase, QAMiner, QASystem, TranscriptLine
from repro.simulation import SentenceGenerator


def test_paper_walkthrough(benchmark, ontology):
    """"What is Stack?" returns the stored definition and lands in FAQ."""
    qa = QASystem(ontology)
    answer = benchmark(qa.answer, "What is Stack?")
    assert answer.text == STACK_DESCRIPTION
    assert len(qa.faq) >= 1


def _question_workload(n: int, seed: int = 0) -> list[str]:
    """Zipf-ish question stream: few popular questions, long tail."""
    generator = SentenceGenerator(default_ontology(), seed=seed)
    distinct = [generator.question().text for _ in range(max(10, n // 5))]
    rng = random.Random(seed)
    stream = []
    for _ in range(n):
        rank = min(int(rng.paretovariate(1.2)), len(distinct))
        stream.append(distinct[rank - 1])
    return stream


def test_answer_rate_and_throughput(benchmark, ontology):
    """Answer rate over 200 generated template questions."""
    questions = _question_workload(200, seed=5)

    def answer_all():
        qa = QASystem(ontology)
        return qa, [qa.answer(q, now=float(i)) for i, q in enumerate(questions)]

    qa, answers = benchmark.pedantic(answer_all, rounds=2, iterations=1)
    answered = sum(1 for a in answers if a.answered)
    assert answered / len(answers) >= 0.95
    # The popular head of the stream must be served from the FAQ cache.
    faq_hits = sum(1 for a in answers if a.source == "faq")
    assert faq_hits > len(answers) / 4
    assert qa.faq.total_questions() == answered


def test_faq_convergence(benchmark, ontology):
    """The top-k most-frequent pairs stabilise as questions accumulate —
    the paper's 'powerful learning tool' claim."""
    questions = _question_workload(400, seed=11)

    def converge():
        qa = QASystem(ontology)
        half = len(questions) // 2
        for q in questions[:half]:
            qa.answer(q)
        top_half = [pair.key for pair in qa.faq.top(5)]
        for q in questions[half:]:
            qa.answer(q)
        top_full = [pair.key for pair in qa.faq.top(5)]
        return top_half, top_full

    top_half, top_full = benchmark.pedantic(converge, rounds=2, iterations=1)
    overlap = len(set(top_half) & set(top_full))
    assert overlap >= 3, (top_half, top_full)


def test_mining_throughput(benchmark, ontology):
    """QA-pair mining over a 200-line transcript."""
    generator = SentenceGenerator(ontology, seed=13)
    transcript = []
    t = 0.0
    for i in range(100):
        question = generator.question()
        transcript.append(TranscriptLine(f"student-{i % 5}", question.text, t))
        t += 1.0
        concept = question.concept or "stack"
        item = ontology.find(concept)
        if item is not None and item.definition.description:
            transcript.append(TranscriptLine("teacher", item.definition.description, t, role="teacher"))
            t += 1.0

    miner = QAMiner(KeywordFilter(ontology))

    def mine():
        faq = FAQDatabase()
        return miner.feed_faq(transcript, faq), faq

    added, faq = benchmark.pedantic(mine, rounds=2, iterations=1)
    assert added > 50
    assert faq.pairs()[0].count >= 2


def test_faq_lookup_latency(benchmark, ontology):
    qa = QASystem(ontology)
    qa.answer("What is Stack?")
    answer = benchmark(qa.answer, "What is Stack?")
    assert answer.source == "faq"
