"""Experiment A1 — the paper's section-4.3 design decision, measured.

The paper proposes two Semantic-Agent methodologies and picks the
ontology one, claiming the Semantic Link Grammar alternative "will take a
lot of cost and time for linguistic classification and the performance is
not very well".  This ablation quantifies all three claims on the same
knowledge:

* maintenance cost — dictionary entries/disjuncts needed per concept vs
  ontology edges per concept;
* accuracy — verdicts on the same labelled sentence set;
* runtime — per-sentence review latency of each methodology.

Expected shape (must match the paper's argument): the ontology
methodology wins coverage/accuracy and costs far less to extend.
"""

from __future__ import annotations

from repro.agents import SemanticAgent, SemanticLinkGrammarAgent
from repro.evaluation import score_binary
from repro.ontology.domains import default_ontology
from repro.simulation import SentenceGenerator

# Sentence shapes both methodologies claim to handle: operation/oblique
# pairings (the paper's own examples).
def _labelled_operation_sentences(n: int, seed: int):
    generator = SentenceGenerator(default_ontology(), seed=seed)
    labelled = []
    while len(labelled) < n:
        clean = generator.correct_statement()
        if clean.operation and "element" in clean.text and "supports" not in clean.text:
            labelled.append((clean.text, False))
        wrong = generator.semantic_violation()
        if wrong.operation and "element" in wrong.text and "supports" not in wrong.text:
            labelled.append((wrong.text, True))
    return labelled[:n]


def test_ontology_methodology_accuracy(benchmark, ontology):
    agent = SemanticAgent(ontology)
    labelled = _labelled_operation_sentences(60, seed=3)

    def review_all():
        return [(truth, agent.review(text).is_anomalous) for text, truth in labelled]

    outcomes = benchmark.pedantic(review_all, rounds=2, iterations=1)
    scored = score_binary(outcomes)
    assert scored.f1 >= 0.95, scored.row()


def test_semantic_lg_methodology_accuracy(benchmark, ontology):
    agent = SemanticLinkGrammarAgent(ontology)
    labelled = _labelled_operation_sentences(60, seed=3)

    def review_all():
        return [
            (truth, agent.review(text).verdict.value in ("violation", "misconception"))
            for text, truth in labelled
        ]

    outcomes = benchmark.pedantic(review_all, rounds=2, iterations=1)
    scored = score_binary(outcomes)
    # The typed grammar handles the operation/oblique shape decently...
    assert scored.recall >= 0.8, scored.row()


def test_coverage_gap_on_taxonomy_sentences(benchmark, ontology):
    """...but cannot express taxonomy/property talk: the ontology
    methodology must beat it clearly on general classroom statements."""
    ontology_agent = SemanticAgent(ontology)
    lg_agent = SemanticLinkGrammarAgent(ontology)
    generator = SentenceGenerator(ontology, seed=7)
    statements = [generator.correct_statement().text for _ in range(40)]

    def false_positive_rates():
        onto_fp = sum(1 for s in statements if ontology_agent.review(s).is_anomalous)
        lg_fp = sum(
            1
            for s in statements
            if lg_agent.review(s).verdict.value in ("violation", "misconception")
        )
        return onto_fp / len(statements), lg_fp / len(statements)

    onto_fp, lg_fp = benchmark.pedantic(false_positive_rates, rounds=2, iterations=1)
    assert onto_fp <= 0.05
    assert lg_fp > onto_fp  # the paper's "performance is not very well"


def test_maintenance_cost_comparison(benchmark, ontology):
    """Dictionary size vs ontology size: the paper's cost claim."""
    from repro.ontology.model import ItemKind

    def measure():
        lg_agent = SemanticLinkGrammarAgent(ontology)
        return lg_agent.maintenance_cost()

    cost = benchmark.pedantic(measure, rounds=2, iterations=1)
    concepts = len(ontology.items_of_kind(ItemKind.CONCEPT))
    relations = len(ontology.relations())
    # Ontology methodology: ~a handful of relations per concept.
    assert relations / concepts < 10
    # LG methodology: an order of magnitude more disjuncts per concept.
    assert cost["disjuncts"] / concepts > 20


def test_ontology_review_latency(benchmark, ontology):
    agent = SemanticAgent(ontology)
    review = benchmark(agent.review, "I push the data into a tree.")
    assert review.is_anomalous


def test_semantic_lg_review_latency(benchmark, ontology):
    agent = SemanticLinkGrammarAgent(ontology)
    review = benchmark(agent.review, "I push the data into a tree.")
    assert review.verdict.value == "violation"
