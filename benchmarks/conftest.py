"""Shared benchmark fixtures (built once per session)."""

from __future__ import annotations

import pytest

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.lexicon import default_dictionary, toy_dictionary
from repro.ontology.domains import default_ontology


@pytest.fixture(scope="session")
def ontology():
    return default_ontology()


@pytest.fixture(scope="session")
def dictionary():
    return default_dictionary()


@pytest.fixture(scope="session")
def parser(dictionary):
    return Parser(dictionary)


@pytest.fixture(scope="session")
def toy_parser():
    return Parser(toy_dictionary(), ParseOptions(use_wall=False))
