"""Experiment F1 — Figure 1: words and connectors.

Reproduces the paper's toy dictionary exactly: the linking requirements
drawn in Fig. 1 (``a/the: D+``, ``cat/mouse: D- & (S+ or O-)``, ``John:
S+ or O-``, ``ran: S-``, ``chased: S- & O+``), their disjunctive form
(section 2.1's translation), and benchmarks dictionary construction and
formula-to-disjunct expansion.
"""

from __future__ import annotations

from repro.linkgrammar.disjunct import expand
from repro.linkgrammar.formula import parse_formula
from repro.linkgrammar.lexicon.toy import toy_dictionary

# The connector boxes of Fig. 1, as (word, formula-order connector labels).
FIGURE1_REQUIREMENTS = {
    "a": [["D+"]],
    "the": [["D+"]],
    "cat": [["D-", "S+"], ["O-", "D-"]],
    "mouse": [["D-", "S+"], ["O-", "D-"]],
    "john": [["S+"], ["O-"]],
    "ran": [["S-"]],
    "chased": [["S-", "O+"]],
}


def _disjunct_shapes(dictionary, word):
    entry = dictionary.lookup_exact(word)
    shapes = []
    for disjunct in entry.disjuncts:
        left = [str(c) for c in disjunct.left]
        right = [str(c) for c in reversed(disjunct.right)]
        shapes.append(left + right)
    return sorted(shapes)


def test_figure1_connector_boxes(benchmark):
    """Every Fig. 1 word exposes exactly the drawn connectors."""
    dictionary = benchmark(toy_dictionary)
    for word, expected in FIGURE1_REQUIREMENTS.items():
        shapes = _disjunct_shapes(dictionary, word)
        assert shapes == sorted(expected), word


def test_disjunctive_form_translation(benchmark):
    """Section 2.1: formula -> disjunct enumeration, on the noun formula."""
    formula = parse_formula("D- & (S+ or O-)")
    disjuncts = benchmark(expand, formula)
    assert len(disjuncts) == 2


def test_formula_parsing_throughput(benchmark):
    """Dictionary-formula parsing speed on a realistic noun frame."""
    source = "{@AN-} & {@A-} & (Ds- or [()]) & {M+} & {R+} & (({Wd-} & Ss+) or SIs- or O- or J-)"
    expr = benchmark(parse_formula, source)
    assert expand(expr)


def test_full_lexicon_construction(benchmark):
    """Cost of building the complete chat-room dictionary from specs."""
    from repro.linkgrammar.lexicon import build_domain_dictionary

    dictionary = benchmark.pedantic(build_domain_dictionary, rounds=3, iterations=1)
    assert len(dictionary) > 800
