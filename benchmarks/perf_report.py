"""Perf-report entry point living next to the pytest benchmarks.

Thin wrapper over :mod:`repro.evaluation.perfbench` so the benchmarks
directory is self-contained::

    PYTHONPATH=src python benchmarks/perf_report.py [--quick]

is equivalent to ``python -m repro bench`` / ``make bench``.  The report
lands in ``BENCH_parse.json`` at the repo root; the ``seed_baseline``
section (numbers measured at the seed commit with identical workloads)
is preserved across runs so the before/after comparison stays visible.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation.perfbench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
