"""Experiment F2 — Figure 2: "The cat chased a mouse" and parser throughput.

The paper's linkage D(the,cat) S(cat,chased) O(chased,mouse) D(a,mouse)
must be the *unique* parse in the toy grammar, satisfy all four meta-rules,
and the same sentence must parse in the full lexicon.  Parser speed is
benchmarked on the toy grammar, the full lexicon, and a null-tolerant
(error) parse.
"""

from __future__ import annotations

import pytest

FIGURE2_SENTENCE = "The cat chased a mouse"
FIGURE2_LINKAGE = "D(the,cat) S(cat,chased) O(chased,mouse) D(a,mouse)"

DOMAIN_SENTENCES = [
    "A stack is a data structure.",
    "We push an element onto the stack.",
    "The tree doesn't have pop method.",
    "Does the queue have a dequeue method?",
    "The top of the stack holds the last element.",
    "Which data structure has the method push?",
    "Insert the key into the binary search tree.",
    "The keys are stored in the table.",
]


def test_figure2_unique_linkage(toy_parser, benchmark):
    result = benchmark(toy_parser.parse, FIGURE2_SENTENCE)
    assert result.total_count == 1
    assert result.best.link_summary() == FIGURE2_LINKAGE
    assert result.best.validate() == []


def test_figure2_in_full_lexicon(parser, benchmark):
    result = benchmark(parser.parse, FIGURE2_SENTENCE)
    assert result.null_count == 0
    summary = result.best.link_summary()
    for fragment in ["Ds(the,cat)", "Ss(cat,chased)", "O(chased,mouse)", "Ds(a,mouse)"]:
        assert fragment in summary


@pytest.mark.parametrize("sentence", DOMAIN_SENTENCES)
def test_domain_sentence_parse(parser, benchmark, sentence):
    """Per-sentence parse latency over representative classroom English."""
    result = benchmark(parser.parse, sentence)
    assert result.null_count == 0, sentence


def test_null_tolerant_parse_cost(parser, benchmark):
    """Fault-tolerant parsing of a broken sentence (null-word search)."""
    result = benchmark(parser.parse, "The stack holds quickly data the.")
    assert result.null_count > 0


def test_meta_rules_validation_speed(toy_parser, benchmark):
    result = toy_parser.parse(FIGURE2_SENTENCE)
    violations = benchmark(result.best.validate)
    assert violations == []
