"""Experiment F4 — Figure 4: the Learning_Angel workflow.

Measures what the workflow diagram promises: syntax checking of learner
sentences, detection quality per injected error class (precision/recall
against ground truth), corpus-backed suggestion hit-rate, and per-sentence
latency of the enhanced (fault-tolerant) parse.
"""

from __future__ import annotations

import pytest

from repro.agents import LearningAngelAgent
from repro.corpus import CorporaGenerator, LearnerCorpus
from repro.evaluation import score_binary
from repro.linkgrammar.lexicon import default_dictionary
from repro.nlp import KeywordFilter
from repro.ontology.domains import default_ontology
from repro.simulation import ErrorClass, ErrorInjector, SentenceGenerator


def _agent() -> LearningAngelAgent:
    corpus = LearnerCorpus()
    CorporaGenerator(default_ontology()).populate(corpus)
    return LearningAngelAgent(
        default_dictionary(), corpus=corpus, keyword_filter=KeywordFilter(default_ontology())
    )


def _labelled_corpus(n: int, error_class: ErrorClass, seed: int = 0):
    """n (text, has_error) pairs: half clean, half injected."""
    generator = SentenceGenerator(default_ontology(), seed=seed)
    injector = ErrorInjector(seed=seed)
    pairs = []
    while len(pairs) < n:
        clean = generator.correct_statement().text
        pairs.append((clean, False))
        result = injector.inject(clean, error_class)
        if result.injected:
            pairs.append((result.text, True))
    return pairs[:n]


@pytest.mark.parametrize(
    "error_class",
    [ErrorClass.AGREEMENT, ErrorClass.WORD_ORDER, ErrorClass.UNKNOWN_WORD,
     ErrorClass.ARTICLE_DROP],
)
def test_detection_per_error_class(benchmark, error_class):
    """Detection quality per injected class; the timed kernel is the
    review of the whole labelled set."""
    agent = _agent()
    pairs = _labelled_corpus(40, error_class, seed=17)

    def review_all():
        return [(truth, agent.review(text)) for text, truth in pairs]

    outcomes = benchmark.pedantic(review_all, rounds=2, iterations=1)
    scored = score_binary(
        (truth, bool(review.diagnosis.issues)) for truth, review in outcomes
    )
    # Expected shape: detection is high-recall on every class; precision
    # stays high because clean generated sentences are in-grammar.
    assert scored.recall >= 0.9, f"{error_class}: {scored.row()}"
    assert scored.precision >= 0.9, f"{error_class}: {scored.row()}"


def test_suggestion_hit_rate(benchmark):
    """How often a broken sentence gets a topic-matched model sentence."""
    agent = _agent()
    generator = SentenceGenerator(default_ontology(), seed=23)
    injector = ErrorInjector(seed=23)
    broken = []
    while len(broken) < 30:
        result = injector.inject_random(generator.correct_statement().text)
        if result.injected and result.error in (ErrorClass.WORD_ORDER, ErrorClass.AGREEMENT):
            broken.append(result.text)

    def review_all():
        return [agent.review(text) for text in broken]

    reviews = benchmark.pedantic(review_all, rounds=2, iterations=1)
    flagged = [r for r in reviews if not r.is_correct]
    with_suggestion = [r for r in flagged if r.suggestion is not None]
    assert flagged, "no errors detected at all"
    assert len(with_suggestion) / len(flagged) >= 0.6


def test_clean_sentence_review_latency(benchmark):
    agent = _agent()
    review = benchmark(agent.review, "The stack holds the data.")
    assert review.is_correct


def test_error_sentence_review_latency(benchmark):
    """Null-count search makes error reviews the expensive path."""
    agent = _agent()
    review = benchmark(agent.review, "The stack holds quickly data the.")
    assert not review.is_correct


def test_repair_latency(benchmark):
    """Single-edit repair search on a typical agreement error."""
    from repro.linkgrammar.repair import SentenceRepairer

    repairer = SentenceRepairer(default_dictionary())
    repairs = benchmark(repairer.repair, "The stacks is full.")
    assert any(r.text == "The stack is full." for r in repairs)


def test_repair_quality_on_injected_errors(benchmark):
    """Share of injected single-edit errors for which the repairer finds a
    fully grammatical correction.

    Unknown-word injections are excluded: recovering an unknown word
    would require guessing vocabulary, which no single-edit search can
    do.  Injections that happen to stay grammatical (some word-order
    swaps) need no repair and are also excluded.
    """
    from repro.linkgrammar import Parser
    from repro.linkgrammar.repair import SentenceRepairer

    generator = SentenceGenerator(default_ontology(), seed=29)
    injector = ErrorInjector(seed=29)
    parser = Parser(default_dictionary())
    broken = []
    while len(broken) < 30:
        result = injector.inject_random(generator.correct_statement().text)
        if not result.injected or result.error == ErrorClass.UNKNOWN_WORD:
            continue
        parsed = parser.parse(result.text)
        still_fine = parsed.null_count == 0 and (parsed.best.cost if parsed.best else 0) == 0
        if not still_fine:
            broken.append(result.text)

    repairer = SentenceRepairer(default_dictionary())

    def repair_all():
        return [repairer.repair(text) for text in broken]

    outcomes = benchmark.pedantic(repair_all, rounds=2, iterations=1)
    repaired = sum(1 for repairs in outcomes if repairs)
    assert repaired / len(broken) >= 0.7, f"{repaired}/{len(broken)}"
